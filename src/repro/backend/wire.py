"""Pickled active-message wire format for the process backend.

Under the simulator every image shares one ``Machine``, so AM payloads
travel as live object references.  On real OS processes each worker
holds its own machine with its own registries, and the shared objects a
payload names — coarrays, events, locks, teams, the machine itself —
must be resolved *by identity* against the receiver's registries, never
copied.  (Copying a coarray would fork its storage; copying an EventVar
would drag a machine and its scheduler across the pipe.)

:func:`dump_frame` therefore pickles with ``persistent_id`` hooks that
replace every registry-owned object with a symbolic name, and
:func:`load_frame` resolves those names against the receiving machine.
Everything else — numpy buffers, plain data, ``CoarrayRef`` /
``ImageSection`` / ``EventRef`` handles (whose inner registry objects
are intercepted recursively), module-level shipped functions — pickles
structurally.

The symmetry requirement this creates is the same one every SPMD
runtime has: shared state must be *declared identically on every
process*.  ``run_spmd(setup=...)`` runs the setup on each worker, and
teams created by collective ``team_split`` calls get identical ids
everywhere because every member executes the same split sequence.  A
shipped function must be importable (module-level) — a closure has no
cross-process name, and raises a :class:`WireError` at send time rather
than a bare pickle error at the receiver.
"""

from __future__ import annotations

import io
import pickle
from typing import Any

from repro.runtime.coarray import Coarray
from repro.runtime.event import EventVar
from repro.runtime.lock import LockVar
from repro.runtime.team import Team


class WireError(TypeError):
    """An AM payload cannot cross a process boundary (unpicklable
    object, or a name that does not resolve on the receiver)."""


def _member_spec(members) -> tuple:
    if isinstance(members, range):
        return ("r", members.start, members.stop)
    return ("t",) + tuple(members)


def _members_from_spec(spec: tuple):
    if spec[0] == "r":
        return range(spec[1], spec[2])
    return tuple(spec[1:])


class _Pickler(pickle.Pickler):
    def __init__(self, buf, machine):
        super().__init__(buf, protocol=pickle.HIGHEST_PROTOCOL)
        self._machine = machine

    def persistent_id(self, obj: Any):
        cls = obj.__class__
        if cls is Coarray:
            return ("coarray", obj.name)
        if cls is EventVar:
            return ("event", obj.name)
        if cls is LockVar:
            return ("lock", obj.name)
        if cls is Team:
            return ("team", obj.id, _member_spec(obj.members))
        if obj is self._machine:
            return ("machine",)
        return None


class _Unpickler(pickle.Unpickler):
    def __init__(self, buf, machine):
        super().__init__(buf)
        self._machine = machine

    def persistent_load(self, pid: tuple) -> Any:
        machine = self._machine
        tag = pid[0]
        try:
            if tag == "coarray":
                return machine.coarray_by_name(pid[1])
            if tag == "event":
                return machine.event_by_name(pid[1])
            if tag == "lock":
                return machine.lock_by_name(pid[1])
        except KeyError:
            raise WireError(
                f"remote active message references {tag} {pid[1]!r}, "
                "which this process never allocated — shared state must "
                "be declared on every process (run_spmd(setup=...) runs "
                "the setup everywhere)"
            ) from None
        if tag == "machine":
            return machine
        if tag == "team":
            team_id, spec = pid[1], pid[2]
            team = machine._teams.get(team_id)
            if team is None:
                # The sender split a team this process has not (yet)
                # created.  Materialize it under the sender's id; with
                # collective team creation (the CAF 2.0 rule) ids agree
                # on every process, so this only fills a timing gap.
                from repro.runtime.program import _member_key

                team = Team(_members_from_spec(spec), team_id=team_id)
                machine._teams[team_id] = team
                machine._teams_by_members.setdefault(
                    _member_key(team.members), team)
            return team
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dump_frame(machine, obj: Any) -> bytes:
    """Pickle ``obj`` for the wire, interning ``machine``-owned objects
    by name."""
    buf = io.BytesIO()
    try:
        _Pickler(buf, machine).dump(obj)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise WireError(
            f"active-message payload cannot cross a process boundary: "
            f"{exc} — shipped functions must be module-level (a closure "
            "has no importable name), and payloads must be picklable"
        ) from exc
    return buf.getvalue()


def load_frame(machine, data: bytes) -> Any:
    """Unpickle a frame, resolving interned names against ``machine``'s
    registries."""
    return _Unpickler(io.BytesIO(data), machine).load()
