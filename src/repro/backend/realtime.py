"""Wall-clock event loop: the process backend's substrate.

One :class:`RealtimeScheduler` runs per OS process and implements the
:class:`~repro.backend.substrate.Substrate` surface the task system and
transport already consume, with three semantic differences from the
deterministic simulator (DESIGN.md §14):

- **Time is wall time.**  ``now`` is ``time.monotonic()`` seconds since
  construction; ``Delay(dt)`` sleeps for at least ``dt`` of real time.
  ``schedule_at`` with a past deadline clamps to *now* instead of
  raising — between computing a deadline and scheduling it the wall
  clock has genuinely moved, which in virtual time would be a bug.
- **An empty queue means idle, not done.**  The simulator treats a
  drained queue as natural termination; a real process must keep
  serving inbound active messages until the coordinator says stop, so
  the loop parks on a condition variable (with the next timer deadline
  as the timeout) and only :meth:`stop` ends it.  Drain hooks are
  accepted but never fire — quiescence of one process proves nothing
  about the machine.
- **There is no quiet instant.**  ``quiescent_at_now()`` answers False,
  so every task continuation bounces through the queue instead of
  trampolining synchronously; with other processes concurrently posting
  work, "nothing else is runnable right now" is unknowable.

Thread model: exactly one thread (the process main thread) runs
:meth:`run` and thus every task, AM handler and timer — the runtime
above needs no locks, same as under the simulator.  Other threads (the
conduit progress thread, the control listener) inject work only through
:meth:`post`, the single thread-safe entry point.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

#: Scheduled entry: ``[time, seq, fn, args]``; ``fn is None`` = cancelled.
Event = List[Any]


class RealtimeScheduler:
    """A minimal wall-clock run loop satisfying the Substrate protocol."""

    def __init__(self) -> None:
        self._t0 = time.monotonic()
        self._heap: list[Event] = []
        self._ready: deque[Event] = deque()
        self._seq = 0
        self._events_processed = 0
        self._task_seq = 0
        self._tasks: list[Any] = []
        self._drain_hooks: list[Callable] = []
        # Cross-thread injection: guarded by the condition's lock; the
        # loop moves entries to `_ready` before running them.
        self._cv = threading.Condition()
        self._inbox: deque[tuple] = deque()
        self._stop_flag = False

    # ------------------------------------------------------------------ #
    # Substrate surface
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        return time.monotonic() - self._t0

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._ready) + len(self._heap) + len(self._inbox)

    def next_task_id(self) -> int:
        self._task_seq += 1
        return self._task_seq

    def _register_task(self, task: Any) -> None:
        self._tasks.append(task)

    def kill_owner(self, owner: int) -> int:
        killed = 0
        keep = []
        for task in self._tasks:
            if task._killed or task.done_future.done:
                continue
            if task.owner == owner:
                task.kill()
                killed += 1
            else:
                keep.append(task)
        self._tasks = keep
        return killed

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        if delay <= 0.0:
            return self.call_soon(fn, *args)
        self._seq += 1
        entry: Event = [self.now + delay, self._seq, fn, args]
        heappush(self._heap, entry)
        return entry

    def schedule_at(self, t: float, fn: Callable, *args: Any) -> Event:
        # Past deadlines are legal on a wall clock: clamp to "due now".
        return self.schedule(t - self.now, fn, *args)

    def call_soon(self, fn: Callable, *args: Any) -> Event:
        self._seq += 1
        entry: Event = [self.now, self._seq, fn, args]
        self._ready.append(entry)
        return entry

    def cancel(self, entry: Event) -> None:
        entry[2] = None

    def quiescent_at_now(self) -> bool:
        return False

    def add_drain_hook(self, fn: Callable) -> None:
        # Stored for surface compatibility; never fired (see docstring).
        self._drain_hooks.append(fn)

    @property
    def schedule_source(self) -> Optional[Any]:
        return None

    def set_schedule_source(self, source: Optional[Any]) -> None:
        if source is not None:
            raise ValueError(
                "schedule exploration requires the deterministic "
                "simulator (backend='sim'); a wall-clock scheduler has "
                "no replayable tie-breaks"
            )

    # ------------------------------------------------------------------ #
    # Cross-thread injection and the run loop
    # ------------------------------------------------------------------ #

    def post(self, fn: Callable, *args: Any) -> None:
        """Enqueue ``fn(*args)`` from any thread; wakes the loop."""
        with self._cv:
            self._inbox.append((fn, args))
            self._cv.notify()

    def stop(self) -> None:
        """End :meth:`run` after the current callback; thread-safe."""
        with self._cv:
            self._stop_flag = True
            self._cv.notify()

    def _drain_inbox(self) -> None:
        # Caller holds no lock; take it briefly and move everything over.
        with self._cv:
            while self._inbox:
                fn, args = self._inbox.popleft()
                self.call_soon(fn, *args)

    def run(self) -> None:
        """Serve ready callbacks, due timers and posted work until
        :meth:`stop`; parks when idle."""
        ready = self._ready
        heap = self._heap
        while not self._stop_flag:
            if self._inbox:
                self._drain_inbox()
            if ready:
                entry = ready.popleft()
                fn = entry[2]
                if fn is not None:
                    self._events_processed += 1
                    fn(*entry[3])
                continue
            # Prune cancelled heap heads, then fire anything due.
            while heap and heap[0][2] is None:
                heappop(heap)
            if heap and heap[0][0] <= self.now:
                entry = heappop(heap)
                self._events_processed += 1
                entry[2](*entry[3])
                continue
            with self._cv:
                if self._stop_flag or self._inbox:
                    continue
                timeout = heap[0][0] - self.now if heap else None
                if timeout is not None and timeout <= 0.0:
                    continue
                self._cv.wait(timeout)
