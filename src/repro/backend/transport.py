"""GASNet-shim conduit transport for the process backend.

:class:`ProcessTransport` duck-types the simulator's
:class:`~repro.net.transport.Network` exactly as far as the layers above
consume it — ``send`` returning a :class:`DeliveryReceipt`, the
two-level membership surface (``suspects`` / ``confirmed`` / quarantine
/ ``confirm_dead``), the ``on_delivery`` hook the failure detector
installs, and the diagnostic attributes ``stall_report`` reads — but
moves real bytes: each active message is pickled with the wire format
(:mod:`repro.backend.wire`) and pushed onto the destination worker's
multiprocessing queue by the sending process; the destination's
progress thread hands it to the destination's run loop, which unpickles
and dispatches it through the same ``AMLayer._on_deliver`` the
simulator uses.

Reliability: a multiprocessing queue never drops or reorders, so there
is no retransmission machinery; ``want_ack`` sends are tracked in an
awaiting-ack table and an explicit ack frame — sent *after* the deliver
callback has run, matching the simulator's ack ordering — resolves
``receipt.delivered``.  What CAN fail is the peer process itself: a
killed worker never acks, and when the failure detector confirms it
dead, :meth:`confirm_dead` fails every awaiting-ack receipt and every
quarantined send with :class:`PeerFailedError` — the exact signal the
finish/recovery layer reconciles on in the simulator.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.net.transport import DeliveryReceipt, Message, PeerFailedError
from repro.backend.wire import dump_frame, load_frame


class ProcessTransport:
    """One per worker process; world-addressed send/receive over the
    conduit's per-rank queues."""

    def __init__(self, sim, params, stats, conduit):
        self.sim = sim
        self.params = params
        self.stats = stats
        self.conduit = conduit
        self.local_rank: int = conduit.rank
        #: bound by the Machine once the AM layer exists
        self.machine = None
        self.am_deliver = None
        # -- Network surface the layers above read ---------------------- #
        self.faults = None
        self.tracer = None
        self.suspects: set[int] = set()
        self.confirmed: set[int] = set()
        self._dead: set[int] = set()
        self.on_delivery = None
        self.on_crash = None
        self.schedule_source = None
        self.lost: list = []
        self.link_retransmits: dict = {}
        self._tx_pending: dict = {}
        self._quarantine: dict[int, list] = {}
        self.quarantine_cap = 256
        # -- conduit state ---------------------------------------------- #
        self._seq = itertools.count(1)
        #: (dst, seq) -> receipt of a transmitted want_ack send
        self._awaiting: dict[tuple, DeliveryReceipt] = {}

    def bind(self, machine) -> None:
        self.machine = machine
        self.am_deliver = machine.am._on_deliver

    # ------------------------------------------------------------------ #
    # Send path
    # ------------------------------------------------------------------ #

    def send(self, msg: Message, want_ack: bool = False,
             best_effort: bool = False) -> DeliveryReceipt:
        msg.seq = next(self._seq)
        receipt = DeliveryReceipt(msg, want_ack)
        dst = msg.dst
        if dst in self.confirmed or dst in self._dead:
            self._fail_fresh_send(msg, receipt)
            return receipt
        if dst in self.suspects and not best_effort:
            self._park(msg, receipt)
            return receipt
        self.stats.incr("net.msgs")
        self.stats.incr("net.bytes", msg.size)
        self._transmit(msg, receipt)
        return receipt

    def _transmit(self, msg: Message, receipt: DeliveryReceipt) -> None:
        if msg.dst == self.local_rank:
            # Loopback: no pickling (reference semantics, same as the
            # simulator's local delivery) but still asynchronous.
            self.sim.call_soon(self._deliver_local, msg, receipt)
            return
        blob = dump_frame(self.machine, (msg.kind, msg.size, msg.payload))
        if receipt.delivered is not None:
            self._awaiting[(msg.dst, msg.seq)] = receipt
        self.conduit.put(msg.dst, ("am", self.local_rank, msg.seq,
                                   receipt.delivered is not None, blob))
        self.sim.call_soon(receipt.injected.set_result, None)

    def _deliver_local(self, msg: Message, receipt: DeliveryReceipt) -> None:
        receipt.injected.set_result(None)
        if self.on_delivery is not None:
            self.on_delivery(msg.src, msg.dst)
        if msg.on_deliver is not None:
            msg.on_deliver(msg)
        if receipt.delivered is not None and not receipt.delivered.done:
            receipt.delivered.set_result(None)

    def _fail_fresh_send(self, msg: Message,
                         receipt: DeliveryReceipt) -> None:
        self.stats.incr("net.peer_failed")
        if receipt.delivered is not None:
            receipt.delivered.set_exception(PeerFailedError(
                f"send of {msg!r} abandoned: image {msg.dst} is "
                + ("confirmed dead" if msg.dst not in self._dead
                   else "crashed"),
                peer=msg.dst, suspected=msg.dst not in self._dead))
        self.sim.call_soon(receipt.injected.set_result, None)

    def _park(self, msg: Message, receipt: DeliveryReceipt) -> None:
        queue = self._quarantine.setdefault(msg.dst, [])
        if len(queue) >= self.quarantine_cap:
            self.stats.incr("net.quarantine_overflow")
            self.stats.incr("net.peer_failed")
            if receipt.delivered is not None:
                receipt.delivered.set_exception(PeerFailedError(
                    f"send of {msg!r} abandoned: quarantine for suspected "
                    f"image {msg.dst} is full ({self.quarantine_cap})",
                    peer=msg.dst, suspected=True))
            self.sim.call_soon(receipt.injected.set_result, None)
            return
        self.stats.incr("net.quarantined")
        queue.append(("send", msg, receipt, False))

    # ------------------------------------------------------------------ #
    # Receive path (run-loop thread; the progress thread only posts)
    # ------------------------------------------------------------------ #

    def deliver_frame(self, item: tuple) -> None:
        """Dispatch one conduit frame.  Called on the run-loop thread via
        ``sim.post``; a frame that fails to decode raises out of the loop
        so the worker reports a structured error instead of hanging."""
        tag = item[0]
        if tag == "am":
            _, src, seq, want_ack, blob = item
            kind, size, payload = load_frame(self.machine, blob)
            msg = Message(src, self.local_rank, size, payload, kind=kind)
            msg.seq = seq
            self.stats.incr("net.delivered")
            if self.on_delivery is not None:
                self.on_delivery(src, self.local_rank)
            if self.am_deliver is not None:
                self.am_deliver(msg)
            if want_ack:
                # After the deliver callback, like the simulator's
                # reliable path: the ack certifies delivery, not receipt.
                self.conduit.put(src, ("ack", self.local_rank, seq))
        elif tag == "ack":
            _, src, seq = item
            receipt = self._awaiting.pop((src, seq), None)
            if (receipt is not None and receipt.delivered is not None
                    and not receipt.delivered.done):
                receipt.delivered.set_result(None)

    # ------------------------------------------------------------------ #
    # Membership (same contract as Network)
    # ------------------------------------------------------------------ #

    def mark_suspect(self, image: int) -> None:
        self.suspects.add(image)

    def unmark_suspect(self, image: int) -> None:
        self.suspects.discard(image)
        queue = self._quarantine.pop(image, None)
        if not queue:
            return
        self.stats.incr("net.quarantine_flushed", len(queue))
        for _tag, msg, receipt, _be in queue:
            self.stats.incr("net.msgs")
            self.stats.incr("net.bytes", msg.size)
            self._transmit(msg, receipt)

    def confirm_dead(self, image: int) -> None:
        if image in self.confirmed:
            return
        self.suspects.add(image)
        self.confirmed.add(image)
        self._fail_quarantined(image, suspected=True)
        self._fail_awaiting(image, suspected=True)

    def mark_dead(self, image: int) -> None:
        if image in self._dead:
            return
        self._dead.add(image)
        self.stats.incr("net.images_dead")
        self._fail_quarantined(image, suspected=False)
        self._fail_awaiting(image, suspected=False)

    def _fail_quarantined(self, image: int, suspected: bool) -> None:
        queue = self._quarantine.pop(image, None)
        if not queue:
            return
        verdict = "confirmed dead" if suspected else "crashed"
        for _tag, msg, receipt, _be in queue:
            self.stats.incr("net.peer_failed")
            if receipt.delivered is not None and not receipt.delivered.done:
                receipt.delivered.set_exception(PeerFailedError(
                    f"quarantined send of {msg!r} abandoned: image "
                    f"{image} is {verdict}", peer=image,
                    suspected=suspected))
            self.sim.call_soon(receipt.injected.set_result, None)

    def _fail_awaiting(self, image: int, suspected: bool) -> None:
        """A peer process died: its acks will never come.  Failing the
        awaiting receipts is what turns an OS-level kill into the same
        :class:`PeerFailedError` signal the recovery ledger re-executes
        on (``spawn._delivery_outcome``)."""
        verdict = "confirmed dead" if suspected else "crashed"
        for key in [k for k in self._awaiting if k[0] == image]:
            receipt = self._awaiting.pop(key)
            self.stats.incr("net.peer_failed")
            if receipt.delivered is not None and not receipt.delivered.done:
                receipt.delivered.set_exception(PeerFailedError(
                    f"ack for {receipt.message!r} abandoned: image "
                    f"{image} is {verdict}", peer=image,
                    suspected=suspected))

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #

    def nic_busy_until(self, image: int) -> float:
        return self.sim.now

    def unacked(self) -> list[str]:
        return [f"{r.message.kind} #{r.message.seq} "
                f"{self.local_rank}->{dst} (awaiting ack)"
                for (dst, _seq), r in self._awaiting.items()]
