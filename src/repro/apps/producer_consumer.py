"""The cofence micro-benchmark (paper Fig. 11 / Fig. 12).

A producer (image 0) repeatedly sends an 80-byte buffer to 5 random
images with ``copy_async``, then prepares the buffer for the next round.
Before it may overwrite the buffer it must synchronize — and the paper
compares three ways of doing so, from weakest (cheapest) to strongest:

- **cofence** — wait for *local data completion* only: the NIC has read
  the buffer; delivery is still in flight.
- **events** — wait for *local operation completion*: each copy's
  destination event reports delivery, one network latency away.
- **finish** — wait for *global completion* of the round: a collective
  finish block whose termination detection costs O(log p) latencies and
  involves every image.

Fig. 12's result — cofence < events < finish, with the finish gap
growing with core count — falls out of exactly these three completion
points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

VARIANTS = ("cofence", "events", "finish")

#: size of the copied buffer, bytes (paper: 80)
COPY_BYTES = 80
#: destinations per round (paper: 5)
FANOUT = 5


@dataclass
class PCConfig:
    """Micro-benchmark parameters (paper: 10^6 iterations; scaled)."""

    iterations: int = 200
    variant: str = "cofence"
    #: simulated cost of producing the next round's buffer
    produce_cost: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; expected {VARIANTS}")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")


@dataclass
class PCResult:
    sim_time: float
    variant: str
    iterations: int
    copies: int
    #: race-detector findings (0 unless racecheck was enabled AND racy)
    races: int = 0


def pc_kernel(img, config: PCConfig) -> Generator[Any, Any, float]:
    """SPMD main program of Fig. 11."""
    machine = img.machine
    inbuf = machine.coarray_by_name("pc_inbuf")
    ev = machine.event_by_name("pc_ev") if config.variant == "events" else None
    src = np.zeros(COPY_BYTES, dtype=np.uint8)

    yield from img.finish_begin()
    for _ in range(config.iterations):
        if config.variant == "finish":
            yield from img.finish_begin()
        if img.rank == 0:
            for _ in range(FANOUT):
                target = int(img.rng.integers(1, img.nimages))
                if config.variant == "events":
                    img.copy_async(inbuf.ref(target), src,
                                   dest_event=ev.ref_for(img.rank))
                else:
                    img.copy_async(inbuf.ref(target), src)
            if config.variant == "cofence":
                yield from img.cofence()
            elif config.variant == "events":
                yield from img.event_wait(ev, count=FANOUT)
        if config.variant == "finish":
            yield from img.finish_end()
        if img.rank == 0:
            # produce_work_next_rnd(): the buffer is reused immediately —
            # legal because the chosen synchronization guaranteed at
            # least local data completion.  The instrumented write is how
            # the race detector checks exactly that.
            yield from img.compute(config.produce_cost)
            img.local_write(src, (src + 1) % 251)
    yield from img.finish_end()
    return img.now


def run_producer_consumer(n_images: int, config: Optional[PCConfig] = None,
                          params=None, seed: int = 0,
                          faults=None, racecheck: bool = False) -> PCResult:
    """Run one variant; returns the simulated execution time."""
    from repro.runtime.program import run_spmd

    config = config if config is not None else PCConfig()

    def setup(machine):
        machine.coarray("pc_inbuf", shape=COPY_BYTES, dtype=np.uint8)
        machine.make_event(name="pc_ev")

    machine, results = run_spmd(pc_kernel, n_images, params=params,
                                seed=seed, args=(config,), setup=setup,
                                faults=faults, racecheck=racecheck)
    return PCResult(
        sim_time=max(results),
        variant=config.variant,
        iterations=config.iterations,
        copies=machine.stats["copy.initiated"],
        races=(machine.racecheck.race_count if racecheck else 0),
    )
