"""Benchmark applications from the paper's evaluation (§IV).

- :mod:`repro.apps.uts` — Unbalanced Tree Search with lifeline-based
  work stealing over function shipping and finish (§IV-C);
- :mod:`repro.apps.randomaccess` — HPC Challenge RandomAccess in the
  reference get-update-put form and the function-shipping form (§IV-B);
- :mod:`repro.apps.producer_consumer` — the cofence/events/finish
  micro-benchmark of Fig. 11/12 (§IV-A);
- :mod:`repro.apps.work_stealing` — the Fig. 2 vs Fig. 3 steal-protocol
  comparison (5 round trips vs 2);
- :mod:`repro.apps.ordering_bug` — a seeded flag-before-data bug (raw
  event post without the release fence) that only specific interleavings
  expose; the schedule explorer's acceptance target.
"""

from repro.apps.uts import TreeParams, UTSConfig, run_uts, sequential_tree_size
from repro.apps.randomaccess import RAConfig, run_randomaccess
from repro.apps.producer_consumer import PCConfig, run_producer_consumer
from repro.apps.work_stealing import WSConfig, run_work_stealing
from repro.apps.ordering_bug import (
    OrderingBugConfig,
    OrderingBugResult,
    make_ordering_bug_target,
    run_ordering_bug,
)

__all__ = [
    "OrderingBugConfig",
    "OrderingBugResult",
    "make_ordering_bug_target",
    "run_ordering_bug",
    "TreeParams",
    "UTSConfig",
    "run_uts",
    "sequential_tree_size",
    "RAConfig",
    "run_randomaccess",
    "PCConfig",
    "run_producer_consumer",
    "WSConfig",
    "run_work_stealing",
]
