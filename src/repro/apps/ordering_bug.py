"""A seeded ordering bug: hand-rolled notification without the release
fence.

A producer (image 0) writes a value into a cell on image 1 with
``copy_async``, then tells the consumer the cell is ready.  The *correct*
CAF 2.0 idiom is ``event_notify``, whose release semantics (§III-B.4a)
hold the notification until the copy's remote effects are visible.  This
kernel instead posts the ready flag with a raw ``machine.post_event`` —
a hand-rolled notification that skips the release fence, the classic
"flag before data" mistake.

Under the baseline schedule the bug is invisible: the data message is
injected before the flag message on the same 0→1 link, and FIFO per-link
delivery lands it first every time.  Only a schedule that lags the data
message behind the flag — exactly what the exploration subsystem's "lag"
choice points can do — makes the consumer read a stale cell.  That makes
this app the acceptance target for the explorer: strategies must find
the interleaving, and the minimized schedule must replay it.

The invariant (checked by :func:`ordering_invariant` or the ``ok`` field
of the result): each round the consumer observes the freshly produced
value, ``round + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

import numpy as np


@dataclass
class OrderingBugConfig:
    """``rounds`` produce/consume handshakes (each one a chance for the
    flag to outrun the data)."""

    rounds: int = 4

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")


@dataclass
class OrderingBugResult:
    sim_time: float
    rounds: int
    observed: List[int]
    expected: List[int]
    ok: bool
    races: int = 0


def obug_kernel(img, config: OrderingBugConfig) -> Generator[Any, Any, list]:
    """SPMD main program; images beyond 0 and 1 just participate in the
    final barrier."""
    machine = img.machine
    cell = machine.coarray_by_name("obug_cell")
    ready = machine.event_by_name("obug_ready")
    ack = machine.event_by_name("obug_ack")
    observed: list = []

    if img.rank == 0:
        for r in range(config.rounds):
            payload = np.full(1, r + 1, dtype=np.int64)
            img.copy_async(cell.ref(1), payload)
            # BUG (seeded): a hand-rolled ready flag.  img.event_notify
            # would hold this post until the copy's remote effects are
            # visible; posting the counter directly races the flag
            # against the data on the same link.
            machine.post_event(ready.ref_for(1), from_rank=0)
            yield from img.event_wait(ack)
    elif img.rank == 1:
        for r in range(config.rounds):
            yield from img.event_wait(ready)
            value = img.local_read(cell.ref(img.rank))
            observed.append(int(np.asarray(value).ravel()[0]))
            # The ack closes the round, so rounds never overlap: the
            # only race in this program is the seeded flag/data one.
            yield from img.event_notify(ack.ref_for(0))
    yield from img.barrier()
    return observed


def ordering_invariant(machine, results) -> Optional[str]:
    """App-level oracle for :func:`repro.explore.make_spmd_target`:
    a non-empty string when the consumer saw a stale value."""
    observed = results[1]
    expected = list(range(1, len(observed) + 1))
    if observed != expected:
        return (f"consumer observed stale data: {observed} "
                f"(expected {expected})")
    return None


def run_ordering_bug(n_images: int = 2,
                     config: Optional[OrderingBugConfig] = None,
                     params=None, seed: int = 0, faults=None,
                     racecheck: bool = False,
                     schedule=None) -> OrderingBugResult:
    """Run the app once (by default under the baseline schedule, where
    the bug never fires)."""
    from repro.runtime.program import run_spmd

    if n_images < 2:
        raise ValueError("ordering_bug needs at least 2 images")
    config = config if config is not None else OrderingBugConfig()

    def setup(machine):
        machine.coarray("obug_cell", shape=1, dtype=np.int64)
        machine.make_event(name="obug_ready")
        machine.make_event(name="obug_ack")

    machine, results = run_spmd(obug_kernel, n_images, params=params,
                                seed=seed, args=(config,), setup=setup,
                                faults=faults, racecheck=racecheck,
                                schedule=schedule)
    observed = results[1]
    expected = list(range(1, config.rounds + 1))
    return OrderingBugResult(
        sim_time=machine.sim.now,
        rounds=config.rounds,
        observed=observed,
        expected=expected,
        ok=observed == expected,
        races=(len(machine.racecheck.races) if racecheck else 0),
    )


def make_ordering_bug_target(n_images: int = 2,
                             config: Optional[OrderingBugConfig] = None,
                             params=None, seed: int = 0, faults=None,
                             racecheck: bool = False):
    """The explorer target for this app: fresh machine per schedule,
    failing on the stale-read invariant (and on race reports when
    ``racecheck`` is on).  Passing ``faults`` — typically a plan whose
    ``crash_choice``/``partition_choice`` menus turn fault timing into
    schedule choice points — composes chaos with message ordering in
    one search space."""
    from repro.explore.explorer import make_spmd_target

    if n_images < 2:
        raise ValueError("ordering_bug needs at least 2 images")
    config = config if config is not None else OrderingBugConfig()

    def setup(machine):
        machine.coarray("obug_cell", shape=1, dtype=np.int64)
        machine.make_event(name="obug_ready")
        machine.make_event(name="obug_ack")

    return make_spmd_target(
        obug_kernel, n_images, setup=setup, args=(config,), params=params,
        seed=seed, faults=faults, racecheck=racecheck,
        invariant=ordering_invariant,
    )
