"""Unbalanced Tree Search (paper §IV-C).

UTS [Olivier et al.] counts the nodes of an implicit tree: each node is a
20-byte SHA-1 descriptor; a node's child count is drawn from a geometric
distribution seeded by the descriptor, so the tree's shape is both highly
unbalanced and fully deterministic.  The paper runs the T1WL-style
geometric configuration (expected branching 4, bounded depth, root seed
19).

The distributed algorithm is the paper's Fig. 15 composite of work
sharing and work stealing [Saraswat et al.]:

1. *Initial work sharing*: image 0 expands the first levels of the tree
   and round-robins the frontier to all images (via shipped functions —
   each push is capped at 9 descriptors by the medium-AM payload limit,
   exactly the constraint the paper reports);
2. *Randomized stealing*: an image that runs dry ships ``steal_work`` to
   one random victim (a steal moves at most 9 items);
3. *Lifelines*: after its steal attempt the image establishes lifelines
   on its hypercube neighbors with shipped ``set_lifeline`` functions
   (one round trip each); an image that later finds surplus work pushes
   a chunk to each incoming lifeline;
4. *Termination*: the whole computation sits in one ``finish`` block —
   a barrier cannot detect termination here because lifeline pushes make
   any image receptive to new work at any time (§IV-C.2d).
"""

from __future__ import annotations

import hashlib
import math
import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Generator, Optional


#: bytes per node descriptor (the SHA-1 digest)
DESCRIPTOR_BYTES = 20


@dataclass(frozen=True)
class TreeParams:
    """Shape of the implicit tree.

    The paper's run uses ``b0=4, max_depth=18, seed=19`` (T1WL-style
    geometric tree); defaults here are scaled down so library tests and
    benchmarks finish in seconds — pass the paper's values to grow the
    full tree.
    """

    b0: float = 4.0
    max_depth: int = 8
    seed: int = 19

    def __post_init__(self) -> None:
        if self.b0 <= 0:
            raise ValueError("b0 must be positive")
        if self.max_depth < 0:
            raise ValueError("max_depth must be non-negative")

    @classmethod
    def paper(cls) -> "TreeParams":
        """The configuration of §IV-C.3: expected branching 4, depth
        bound 18, root seed 19.  The resulting tree has billions of
        nodes — only use it for real (hours-long) reproduction runs."""
        return cls(b0=4.0, max_depth=18, seed=19)


def root_descriptor(params: TreeParams) -> bytes:
    """The SHA-1 descriptor of the root node."""
    return hashlib.sha1(struct.pack(">i", params.seed)).digest()


def child_descriptor(parent: bytes, index: int) -> bytes:
    """Descriptor of the ``index``-th child (SHA-1 of parent ∥ index)."""
    return hashlib.sha1(parent + struct.pack(">i", index)).digest()


def num_children(descriptor: bytes, depth: int, params: TreeParams) -> int:
    """Geometric child count with mean ``b0``, zero at the depth bound.

    Follows the UTS GEO/fixed shape function: draw u ∈ [0,1) from the
    descriptor and return ``floor(log(1-u) / log(1 - 1/(1+b0)))``.
    """
    if depth >= params.max_depth:
        return 0
    # low 32 bits of the descriptor as a uniform draw
    u = struct.unpack(">I", descriptor[:4])[0] / 2.0 ** 32
    if u >= 1.0:  # pragma: no cover - unreachable with 32-bit draw
        u = 1.0 - 2.0 ** -33
    denominator = math.log(1.0 - 1.0 / (1.0 + params.b0))
    return int(math.floor(math.log(1.0 - u) / denominator))


def expand(descriptor: bytes, depth: int, params: TreeParams
           ) -> list[tuple[bytes, int]]:
    """All (descriptor, depth) children of a node."""
    n = num_children(descriptor, depth, params)
    return [(child_descriptor(descriptor, i), depth + 1) for i in range(n)]


def sequential_tree_size(params: TreeParams) -> int:
    """Count the whole tree on one thread (ground truth for tests and
    the efficiency baseline T1)."""
    count = 0
    stack = [(root_descriptor(params), 0)]
    while stack:
        desc, depth = stack.pop()
        count += 1
        stack.extend(expand(desc, depth, params))
    return count


# --------------------------------------------------------------------- #
# The distributed benchmark
# --------------------------------------------------------------------- #

@dataclass
class UTSConfig:
    """Tunables of the distributed run."""

    tree: TreeParams = field(default_factory=TreeParams)
    #: simulated CPU seconds to process one node (hash + bookkeeping)
    node_cost: float = 2.0e-6
    #: queue length below which an image will not give work away
    share_threshold: int = 4
    #: levels image 0 expands before the initial distribution
    init_sharing_depth: int = 2
    #: failed steal attempts before quiescing into lifelines (paper: 1)
    steal_attempts: int = 1
    #: exponential-backoff ceiling on consecutive steal rounds skipped by
    #: an image whose previous steals came back empty (1, 2, 4, ... cap).
    #: An idle image in a work-starved phase otherwise re-steals on every
    #: lifeline push it receives, flooding victims with fruitless
    #: ``_steal_work`` shipments at scale.
    steal_backoff_cap: int = 64
    #: termination detector for the enclosing finish (Fig. 18 compares
    #: "epoch" against "wave_unbounded")
    detector: str = "epoch"


@dataclass
class UTSResult:
    """Per-run measurements (see the harness for derived figures)."""

    total_nodes: int
    sim_time: float
    nodes_per_image: list[int]
    busy_per_image: list[float]
    steals_attempted: int
    steals_successful: int
    lifeline_pushes: int
    finish_rounds: int
    #: chaos-mode transport counters (zero on a clean network)
    retransmits: int = 0
    drops: int = 0
    dups: int = 0
    #: race-detector findings (0 unless racecheck was enabled AND racy)
    races: int = 0
    #: world ranks that fail-stopped during the run (crash injection)
    failed_images: tuple = ()
    #: shipped functions re-executed on survivors by recovery
    recovered_spawns: int = 0


class _UTSState:
    """Per-image mutable state, shared by the main program and every
    shipped function executing on the image."""

    def __init__(self) -> None:
        self.queue: list[tuple[bytes, int]] = []
        self.nodes = 0
        self.processing = False
        self.lifelines_in: deque[int] = deque()  # team ranks waiting on me
        self.lifelines_set = False
        # Steal backoff: consecutive fruitless steal rounds, steal rounds
        # still to skip, and whether a steal is in flight unanswered.
        self.steal_fails = 0
        self.steal_skip = 0
        self.steal_pending = False


#: packed wire bytes per work item (20-byte digest + 4-byte depth)
ITEM_BYTES = DESCRIPTOR_BYTES + 4


def chunk_limit(machine) -> int:
    """Work items per shipped push/steal reply: how many packed
    (descriptor, depth) records fit in one medium AM after the spawn
    header — 9 with default parameters, matching the paper's GASNet
    constraint (§IV-C.1a)."""
    from repro.core.spawn import SPAWN_HEADER_BYTES
    budget = machine.params.am_medium_max - SPAWN_HEADER_BYTES
    return max(1, budget // ITEM_BYTES)


def pack_items(items: list[tuple[bytes, int]]) -> bytes:
    """Pack work items into the flat AM payload representation."""
    return b"".join(desc + struct.pack(">i", depth) for desc, depth in items)


def unpack_items(blob: bytes) -> list[tuple[bytes, int]]:
    """Inverse of :func:`pack_items`."""
    if len(blob) % ITEM_BYTES:
        raise ValueError(f"corrupt work payload of {len(blob)} bytes")
    out = []
    for off in range(0, len(blob), ITEM_BYTES):
        desc = blob[off:off + DESCRIPTOR_BYTES]
        (depth,) = struct.unpack(
            ">i", blob[off + DESCRIPTOR_BYTES:off + ITEM_BYTES])
        out.append((desc, depth))
    return out


def _uts_scratch(machine) -> dict:
    return machine.scratch.setdefault("uts.states", {})


def _state_of(machine, rank: int) -> _UTSState:
    states = _uts_scratch(machine)
    if rank not in states:
        states[rank] = _UTSState()
    return states[rank]


def _process_loop(img, config: UTSConfig) -> Generator[Any, Any, None]:
    """Drain the local queue, sharing surplus along incoming lifelines.
    Re-entrant-safe: only one activation per image runs it at a time."""
    machine = img.machine
    st = _state_of(machine, img.rank)
    if st.processing:
        return
    st.processing = True
    try:
        while st.queue:
            desc, depth = st.queue.pop()
            yield from img.compute(config.node_cost)
            st.nodes += 1
            st.queue.extend(expand(desc, depth, config.tree))
            # Fig. 15 lines 7-11: if someone needs work, push them some.
            while (st.lifelines_in
                   and len(st.queue) > config.share_threshold):
                target = st.lifelines_in.popleft()
                chunk = _take_chunk(machine, st, config)
                if not chunk:
                    st.lifelines_in.appendleft(target)
                    break
                machine.stats.incr("uts.lifeline_pushes")
                yield from img.spawn(_push_work, target, pack_items(chunk))
    finally:
        st.processing = False


def _take_chunk(machine, st: _UTSState, config: UTSConfig) -> list:
    """Reserve up to a medium-AM's worth of work from the queue bottom
    (oldest nodes root the largest subtrees)."""
    give = min(chunk_limit(machine),
               max(0, len(st.queue) - config.share_threshold // 2))
    chunk, st.queue[:give] = st.queue[:give], []
    return chunk


def _push_work(img, blob: bytes) -> Generator[Any, Any, None]:
    """Shipped: deliver packed work to an image and process it there."""
    machine = img.machine
    st = _state_of(machine, img.rank)
    st.queue.extend(unpack_items(blob))
    config = machine.scratch["uts.config"]
    yield from _process_loop(img, config)
    # Having drained again, retry one random steal and re-arm the
    # lifelines (a served lifeline is consumed by the push, so the image
    # must re-register with its neighbors to stay receptive).
    if not st.queue and not st.processing:
        if st.steal_skip > 0:
            # Backing off: sit on the lifelines instead of re-stealing.
            st.steal_skip -= 1
            machine.stats.incr("uts.steals_skipped")
        else:
            yield from _attempt_steals(img, config)
        st.lifelines_set = False
        yield from _establish_lifelines(img)


def _steal_reply(img, blob: bytes) -> Generator[Any, Any, None]:
    """Shipped: a steal *response* — proof the thief's last steal paid
    off, which resets its backoff before the work is queued.  A separate
    entry point rather than a flag argument because the function
    identity rides in the fixed spawn header: the payload stays
    bit-identical to a lifeline push, so the chunk budget
    (:func:`chunk_limit`, the paper's 9-descriptor GASNet constraint)
    is unchanged."""
    st = _state_of(img.machine, img.rank)
    st.steal_fails = 0
    st.steal_skip = 0
    st.steal_pending = False
    yield from _push_work(img, blob)


def _steal_work(img, thief: int) -> Generator[Any, Any, None]:
    """Shipped: run at the victim; reserve a chunk and ship it back
    (Fig. 3: the whole steal is two one-way spawns)."""
    machine = img.machine
    st = _state_of(machine, img.rank)
    config = machine.scratch["uts.config"]
    machine.stats.incr("uts.steals_attempted")
    if len(st.queue) > config.share_threshold:
        chunk = _take_chunk(machine, st, config)
        if chunk:
            machine.stats.incr("uts.steals_successful")
            yield from img.spawn(_steal_reply, thief, pack_items(chunk))


def _set_lifeline(img, waiter: int) -> Generator[Any, Any, None]:
    """Shipped: record that ``waiter`` wants work from this image.  A
    single round trip because the update runs where the lifeline list
    lives (§IV-C.2c)."""
    st = _state_of(img.machine, img.rank)
    if waiter not in st.lifelines_in:
        st.lifelines_in.append(waiter)
    yield from img.compute(1e-7)


def _attempt_steals(img, config: UTSConfig) -> Generator[Any, Any, None]:
    st = _state_of(img.machine, img.rank)
    if st.steal_pending:
        # The previous round is still unanswered — it found nothing (a
        # successful steal would have reset this flag).  Back off
        # exponentially before the round we are about to send.
        st.steal_fails += 1
        st.steal_skip = min(1 << st.steal_fails, config.steal_backoff_cap)
    for _ in range(config.steal_attempts):
        victim = int(img.rng.integers(0, img.nimages))
        if victim == img.team_rank():
            victim = (victim + 1) % img.nimages
        if img.nimages > 1:
            yield from img.spawn(_steal_work, victim, img.team_rank())
            st.steal_pending = True


def _establish_lifelines(img) -> Generator[Any, Any, None]:
    st = _state_of(img.machine, img.rank)
    if st.lifelines_set:
        return
    st.lifelines_set = True
    me = img.team_rank()
    for neighbor in img.team_world.hypercube_neighbors(me):
        yield from img.spawn(_set_lifeline, neighbor, me)


def uts_kernel(img, config: UTSConfig) -> Generator[Any, Any, int]:
    """The SPMD main program (paper Fig. 15)."""
    machine = img.machine
    machine.scratch.setdefault("uts.config", config)
    st = _state_of(machine, img.rank)

    yield from img.finish_begin()

    if img.rank == 0:
        # Initial work sharing: expand a few levels, deal the frontier.
        frontier = [(root_descriptor(config.tree), 0)]
        for _level in range(config.init_sharing_depth):
            next_frontier: list[tuple[bytes, int]] = []
            for desc, depth in frontier:
                yield from img.compute(config.node_cost)
                st.nodes += 1
                next_frontier.extend(expand(desc, depth, config.tree))
            frontier = next_frontier
        limit = chunk_limit(machine)
        dealt: list[list] = [[] for _ in range(img.nimages)]
        for i, node in enumerate(frontier):
            dealt[i % img.nimages].append(node)
        for target, items in enumerate(dealt):
            if target == 0:
                st.queue.extend(items)
                continue
            for start in range(0, len(items), limit):
                yield from img.spawn(
                    _push_work, target,
                    pack_items(items[start:start + limit]))

    yield from _process_loop(img, config)
    # Fig. 15 lines 13-20: steal once, then set up lifelines.
    yield from _attempt_steals(img, config)
    yield from _establish_lifelines(img)
    rounds = yield from img.finish_end(detector=config.detector)

    machine.scratch["uts.finish_rounds"] = rounds
    return st.nodes


def _uts_finalize(machine, rank: int) -> tuple:
    """Per-worker post-run probe for the process backend: this rank's
    busy seconds and its view of the finish round count."""
    return (float(machine.busy.busy[rank]),
            int(machine.scratch.get("uts.finish_rounds", 0)))


def run_uts(n_images: int, config: Optional[UTSConfig] = None,
            params=None, seed: int = 0, faults=None,
            racecheck: bool = False, failure_detection=None,
            backend: str = "sim") -> UTSResult:
    """Run the distributed UTS benchmark; returns measurements.

    ``failure_detection`` (see :func:`repro.runtime.program.run_spmd`)
    arms the heartbeat detector; with recovery enabled a mid-run crash
    still yields the correct total tree count — the crash demo of
    DESIGN §11.  A dead image contributes 0 to ``total_nodes`` (its
    memory died with it); recovery re-executes its lost work on
    survivors, where the re-explored nodes are counted.

    ``backend="process"`` runs the same kernel on real OS processes
    (one per image); ``sim_time`` is then the slowest worker's wall
    clock.  ``total_nodes`` is schedule-invariant, so it must equal the
    simulator's — that is the cross-validation oracle (DESIGN §14)."""
    config = config if config is not None else UTSConfig()
    if backend == "process":
        if faults is not None or racecheck:
            raise ValueError(
                "fault injection and race checking are simulator-only")
        from repro.backend.parallel import run_spmd_process

        run, per_image = run_spmd_process(
            uts_kernel, n_images, params=params, seed=seed,
            args=(config,), failure_detection=failure_detection,
            finalize=_uts_finalize)
        return UTSResult(
            total_nodes=sum(n for n in per_image if n is not None),
            sim_time=run.sim.now,
            nodes_per_image=per_image,
            busy_per_image=[e[0] if e is not None else 0.0
                            for e in run.extras],
            steals_attempted=run.stats["uts.steals_attempted"],
            steals_successful=run.stats["uts.steals_successful"],
            lifeline_pushes=run.stats["uts.lifeline_pushes"],
            finish_rounds=max((e[1] for e in run.extras
                               if e is not None), default=0),
            retransmits=run.stats["net.retransmits"],
            drops=run.stats["net.drops"],
            dups=run.stats["net.dups"],
            failed_images=tuple(sorted(run.dead_images)),
            recovered_spawns=run.stats["spawn.recovered"],
        )
    from repro.runtime.program import run_spmd

    machine, per_image = run_spmd(uts_kernel, n_images, params=params,
                                  seed=seed, args=(config,), faults=faults,
                                  racecheck=racecheck,
                                  failure_detection=failure_detection)
    return UTSResult(
        total_nodes=sum(n for n in per_image if n is not None),
        sim_time=machine.sim.now,
        nodes_per_image=per_image,
        busy_per_image=machine.busy.busy.tolist(),
        steals_attempted=machine.stats["uts.steals_attempted"],
        steals_successful=machine.stats["uts.steals_successful"],
        lifeline_pushes=machine.stats["uts.lifeline_pushes"],
        finish_rounds=machine.scratch.get("uts.finish_rounds", 0),
        retransmits=machine.stats["net.retransmits"],
        drops=machine.stats["net.drops"],
        dups=machine.stats["net.dups"],
        races=(machine.racecheck.race_count if racecheck else 0),
        failed_images=tuple(sorted(machine.dead_images)),
        recovered_spawns=machine.stats["spawn.recovered"],
    )
