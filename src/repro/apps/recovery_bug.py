"""A seeded crash-recovery bug: at-least-once redo without idempotency.

Three images play a miniature work-queue: a *worker* (image 1) drains
a statically-assigned batch of work items; the effect of each item is a
``spawn`` to a *store* (image 2) that increments an accumulator cell.
Completion is accounted by hand — after draining the batch the worker
posts one ``done`` event per item to the *coordinator* (image 0), which
polls the counter while watching the failure detector.

The *correct* CAF 2.0 idiom is implicit completion: run the spawns
inside a ``finish`` and let the runtime's ledger (DESIGN §11) reconcile
exactly-once re-execution after a crash.  This kernel instead hand-rolls
at-least-once recovery: when the detector suspects the worker, the
coordinator re-applies every item the done counter has not accounted
for.  That redo is **not idempotent** — the first half of the seeded
bug.  The second half is the reconciler: small drifts of the store
accumulator (up to ``items - 1``) are written off as acceptable
wobble, so a violation only *surfaces* when every in-flight completion
record dies with the worker — i.e. when the crash lands between
*delivery* (all the applies landed at the store) and *completion
accounting* (none of the done posts reached the coordinator).

Under the baseline schedule no candidate time in the crash menu sits in
that gap: the done posts land within a fraction of a wire latency of
their applies.  Only delivery-lag choices that hold *every* done post
back past the crash candidate open it — a conjunction of one ``"fault"``
menu choice and ``items`` independent ``"lag"`` choices.  Crucially the
conjunction is *incremental and observable*: each additional lagged
done post strands one more unaccounted item, so the recovery path
re-applies one more spawn — more ``spawn:0->2`` choice points in the
recorded stream — long before the drift crosses the reconciler's
write-off threshold.  A coverage-guided searcher climbs that ladder
stage by stage; a blind random walk has to roll the whole conjunction
at once.  This app is therefore the acceptance target for the fuzzing
service, as ``ordering_bug`` was for the single-schedule explorer.

The invariant: the store accumulator must end within the reconciler's
tolerance of ``items`` — the write-off is symmetric, so only the full
re-apply-everything conjunction can push the drift out of bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

COORDINATOR = 0
WORKER = 1
STORE = 2

#: Cost modelled for one store-side apply (keeps the RMW a single
#: continuation slice: the read-modify-write below never yields).
APPLY_COST = 1e-6


@dataclass
class RecoveryBugConfig:
    """``items`` work items, shipped as one batch; the worker spends
    ``work_cost`` modelled seconds per item.  The coordinator polls the
    done counter every ``poll`` seconds while watching the failure
    detector, and its reconciler writes off accumulator drift up to
    ``items - 1`` as wobble (the seeded bug's second half)."""

    items: int = 5
    work_cost: float = 6e-6
    poll: float = 2e-5

    def __post_init__(self) -> None:
        if self.items < 1:
            raise ValueError("items must be >= 1")
        if self.work_cost <= 0 or self.poll <= 0:
            raise ValueError("work_cost and poll must be positive")

    @property
    def drift_tolerance(self) -> int:
        return self.items - 1


@dataclass
class RecoveryBugResult:
    sim_time: float
    items: int
    store: int
    done_count: int
    recovered: bool
    ok: bool


def _apply(img, item: int) -> Generator[Any, Any, None]:
    """The effect of one work item: bump the store accumulator.  A plain
    read-modify-write — re-executing it is visible, which is exactly
    what the seeded recovery path gets wrong."""
    yield from img.compute(APPLY_COST)
    store = img.machine.coarray_by_name("rbug_store")
    ref = store.ref(img.rank)
    value = np.asarray(img.local_read(ref))
    img.local_write(ref, value + 1)


def _work_batch(img, items: int, work_cost: float) -> Generator[Any, Any,
                                                                None]:
    """The worker's batch: drain the queue (compute each item, ship its
    effect to the store), then report completions."""
    machine = img.machine
    for item in range(items):
        yield from img.compute(work_cost)
        yield from img.spawn(_apply, STORE, item)
    # BUG (seeded): completion is accounted only now, one post per item,
    # the moment the applies have been *issued* — hand-rolled done posts
    # instead of explicit completion chained off each apply's execution.
    # If this image dies after the applies land at the store but before
    # these posts reach the coordinator, every item reads as unfinished
    # and gets re-applied.
    done = machine.event_by_name("rbug_done")
    for item in range(items):
        machine.post_event(done.ref_for(COORDINATOR), from_rank=img.rank)


def rbug_kernel(img, config: RecoveryBugConfig) -> Generator[Any, Any, Any]:
    """SPMD main program.  The worker drains its statically-assigned
    batch; the store is passive (its applies arrive as spawns); the
    coordinator polls the done counter.  No closing barrier: a crashed
    worker must not deadlock the survivors."""
    machine = img.machine
    if img.rank == WORKER:
        yield from _work_batch(img, config.items, config.work_cost)
        return None
    if img.rank != COORDINATOR:
        return None
    done = machine.event_by_name("rbug_done")
    recovered = False
    while done.count_at(COORDINATOR) < config.items:
        if img.image_failed(WORKER):
            # Hand-rolled at-least-once recovery: re-apply every item
            # the done counter has not accounted for.  Count-based and
            # non-idempotent — the seeded bug's first half.
            missing = config.items - done.count_at(COORDINATOR)
            for k in range(missing):
                yield from img.spawn(_apply, STORE, -(k + 1))
            recovered = True
            break
        yield from img.compute(config.poll)
    return {"done": done.count_at(COORDINATOR), "recovered": recovered}


def _store_value(machine) -> int:
    store = machine.coarray_by_name("rbug_store")
    return int(np.asarray(store.local_at(STORE)).ravel()[0])


def make_recovery_invariant(config: RecoveryBugConfig):
    """App-level oracle, mirroring the sloppy reconciler: accumulator
    drift up to ``drift_tolerance`` in *either* direction is written off
    as wobble (slow applies still in flight, the odd duplicate).  Above
    ``items + tolerance`` means the recovery path re-applied *every*
    already-delivered item — the full delivery-vs-accounting gap; below
    ``items - tolerance`` would mean nearly all effects vanished while
    accounted done (unreachable here; reported for completeness)."""
    items = config.items
    tolerance = config.drift_tolerance

    def recovery_invariant(machine, results) -> Optional[str]:
        value = _store_value(machine)
        if value > items + tolerance:
            return (f"store double-counted re-executed applies: "
                    f"{value} > {items} + tolerance {tolerance}")
        if value < items - tolerance:
            return (f"store lost updates accounted as done: "
                    f"{value} < {items} - tolerance {tolerance}")
        return None

    return recovery_invariant


def setup_recovery_bug(machine) -> None:
    machine.coarray("rbug_store", shape=1, dtype=np.int64)
    machine.make_event(name="rbug_done")


def _failure_config():
    from repro.runtime.failure import FailureConfig
    return FailureConfig(period=2e-5, timeout=8e-5, recover=True)


def run_recovery_bug(config: Optional[RecoveryBugConfig] = None,
                     params=None, seed: int = 0, faults=None,
                     schedule=None) -> RecoveryBugResult:
    """Run the app once (by default under the baseline schedule with no
    crash, where the accounting is never wrong)."""
    from repro.runtime.program import run_spmd

    config = config if config is not None else RecoveryBugConfig()
    machine, results = run_spmd(
        rbug_kernel, 3, params=params, seed=seed, args=(config,),
        setup=setup_recovery_bug, faults=faults, schedule=schedule,
        failure_detection=_failure_config())
    store = _store_value(machine)
    coord = results[COORDINATOR] or {}
    return RecoveryBugResult(
        sim_time=machine.sim.now,
        items=config.items,
        store=store,
        done_count=int(coord.get("done", 0)),
        recovered=bool(coord.get("recovered", False)),
        ok=store == config.items,
    )


def default_crash_menu(config: Optional[RecoveryBugConfig] = None) -> tuple:
    """The worker-crash menu the acceptance experiment searches: mostly
    decoys bracketing the whole protocol (early crashes recover cleanly;
    mid-batch crashes drift within the reconciler's tolerance; late ones
    land after accounting), plus one candidate just past the baseline
    done-post delivery times — reachable only when delivery-lag choices
    hold every done post back past it.  Times are empirical constants
    for the default ``MachineParams`` timeline (see
    tests/apps/test_recovery_bug.py, which pins them against the
    recorded schedule); the search must not know which entries matter.
    """
    config = config if config is not None else RecoveryBugConfig()
    t_drain = config.items * config.work_cost
    magic = t_drain + 3.25e-6             # past every baseline done
    decoys = [1e-6]
    decoys += [(k + 0.45) * config.work_cost for k in range(config.items)]
    decoys += [t_drain + 1e-6,            # mid completion-post burst
               t_drain + 8e-6, t_drain + 2e-5, t_drain + 5e-5,
               t_drain + 1.1e-4, t_drain + 1.9e-4, t_drain + 3e-4]
    return tuple(sorted(set(decoys + [magic])))


def make_recovery_bug_target(config: Optional[RecoveryBugConfig] = None,
                             params=None, seed: int = 0, faults=None,
                             crash_menu: Optional[tuple] = None):
    """The fuzzing target: fresh machine per schedule, heartbeat failure
    detection on, failing on the store-accumulator invariant.  By
    default the target carries a :func:`default_crash_menu` worker-crash
    menu, so crash timing rides the recorded choice stream alongside
    message ordering; pass ``faults`` to compose further chaos (the
    menu is added to a clone, the caller's plan is untouched)."""
    from repro.explore.explorer import make_spmd_target
    from repro.net.faults import FaultPlan

    config = config if config is not None else RecoveryBugConfig()
    plan = faults.clone() if faults is not None else FaultPlan()
    if crash_menu is None:
        crash_menu = default_crash_menu(config)
    if crash_menu:
        plan.crash_choice(WORKER, crash_menu)
    return make_spmd_target(
        rbug_kernel, 3, setup=setup_recovery_bug, args=(config,),
        params=params, seed=seed, faults=plan,
        invariant=make_recovery_invariant(config),
        failure_detection=_failure_config(),
    )
