"""The Fig. 2 vs Fig. 3 steal-protocol comparison.

Dinan et al.'s PGAS work-stealing loop (paper Fig. 2) performs a steal
attempt with five network round trips — get metadata, lock, re-get
metadata, put reserved metadata + get stolen work, unlock.  Rewriting the
steal as a shipped function (Fig. 3) localizes every one of those
operations at the victim and needs two one-way spawns.

This module implements both protocols against the same victim task-queue
substrate so examples and benchmarks can measure the round-trip savings
directly (the paper's motivation for function shipping, §II-C.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np


@dataclass
class WSConfig:
    """One experiment: every non-victim image performs ``steals_per_thief``
    steal attempts against image 0's queue."""

    initial_tasks: int = 256
    steal_chunk: int = 4
    steals_per_thief: int = 8
    protocol: str = "shipped"  # or "get-put"

    def __post_init__(self) -> None:
        if self.protocol not in ("shipped", "get-put"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if min(self.initial_tasks, self.steal_chunk,
               self.steals_per_thief) <= 0:
            raise ValueError("all sizes must be positive")


@dataclass
class WSResult:
    sim_time: float
    tasks_stolen: int
    steal_attempts: int
    messages: int
    mean_steal_latency: float


def _queues(machine) -> dict:
    return machine.scratch.setdefault("ws.queues", {})


def _setup(machine, config: WSConfig) -> None:
    # metadata[0] = number of available tasks on the image
    machine.coarray("ws_metadata", shape=1, dtype=np.int64)
    machine.make_lock(name="ws_lock")
    machine.coarray_by_name("ws_metadata").local_at(0)[0] = config.initial_tasks
    _queues(machine)[0] = list(range(config.initial_tasks))


# --------------------------------------------------------------------- #
# Fig. 2: five round trips per attempt
# --------------------------------------------------------------------- #

def steal_get_put(img, victim: int, chunk: int
                  ) -> Generator[Any, Any, int]:
    """One Fig. 2 steal attempt; returns the number of tasks stolen."""
    machine = img.machine
    meta = machine.coarray_by_name("ws_metadata")
    lock = machine.lock_by_name("ws_lock")

    m = yield from img.get(meta.ref(victim, 0))            # trip 1
    if m <= 0:
        return 0
    yield from lock.acquire(img, victim)                   # trip 2
    try:
        m = yield from img.get(meta.ref(victim, 0))        # trip 3
        if m <= 0:
            return 0
        w = min(int(m), chunk)
        yield from img.put(meta.ref(victim, 0),
                           np.int64(int(m) - w))           # trip 4
        # trip 5: fetch the reserved tasks (queue transfer modeled as a
        # get of w words; the items move through machine scratch)
        victim_queue = _queues(machine).setdefault(victim, [])
        stolen, victim_queue[:w] = victim_queue[:w], []
        _ = yield from img.get(meta.ref(victim, 0))
        _queues(machine).setdefault(img.rank, []).extend(stolen)
        return len(stolen)
    finally:
        lock.release(img, victim)                          # one-way


# --------------------------------------------------------------------- #
# Fig. 3: two one-way spawns per attempt
# --------------------------------------------------------------------- #

def _provide_work(img, items, token) -> Generator[Any, Any, None]:
    """Shipped back to the thief with the stolen tasks."""
    machine = img.machine
    _queues(machine).setdefault(img.rank, []).extend(items)
    machine.scratch[("ws.done", token)](len(items))
    yield from img.compute(1e-7)


def _steal_work(img, thief: int, chunk: int, token
                ) -> Generator[Any, Any, None]:
    """Shipped to the victim: the whole Fig. 2 body with every remote
    operation now local."""
    machine = img.machine
    meta = machine.coarray_by_name("ws_metadata")
    lock = machine.lock_by_name("ws_lock")
    local_meta = meta.local_at(img.rank)
    if local_meta[0] > 0:
        yield from lock.acquire(img, img.team_rank())  # local: no trip
        try:
            m = int(local_meta[0])
            if m > 0:
                w = min(m, chunk)
                local_meta[0] = m - w
                queue = _queues(machine).setdefault(img.rank, [])
                stolen, queue[:w] = queue[:w], []
                yield from img.spawn(_provide_work, thief, stolen, token)
                return
        finally:
            lock.release(img, img.team_rank())
    machine.scratch[("ws.done", token)](0)


def steal_shipped(img, victim: int, chunk: int
                  ) -> Generator[Any, Any, int]:
    """One Fig. 3 steal attempt; returns the number of tasks stolen."""
    machine = img.machine
    from repro.sim.tasks import Future
    token = machine.next_token()
    outcome = Future(f"ws.steal{token}")
    machine.scratch[("ws.done", token)] = outcome.set_result
    yield from img.spawn(_steal_work, victim, img.team_rank(), chunk, token)
    count = yield outcome
    del machine.scratch[("ws.done", token)]
    return int(count)


# --------------------------------------------------------------------- #
# The experiment
# --------------------------------------------------------------------- #

def ws_kernel(img, config: WSConfig) -> Generator[Any, Any, tuple]:
    stolen = 0
    attempts = 0
    latencies = []
    yield from img.finish_begin()
    if img.rank != 0:
        for _ in range(config.steals_per_thief):
            t0 = img.now
            if config.protocol == "shipped":
                got = yield from steal_shipped(img, 0, config.steal_chunk)
            else:
                got = yield from steal_get_put(img, 0, config.steal_chunk)
            latencies.append(img.now - t0)
            attempts += 1
            stolen += got
    yield from img.finish_end()
    return (stolen, attempts, latencies)


def run_work_stealing(n_images: int, config: Optional[WSConfig] = None,
                      params=None, seed: int = 0) -> WSResult:
    """Run the protocol experiment; returns aggregate steal metrics."""
    from repro.runtime.program import run_spmd

    config = config if config is not None else WSConfig()
    machine, results = run_spmd(
        ws_kernel, n_images, params=params, seed=seed, args=(config,),
        setup=lambda m: _setup(m, config),
    )
    all_latencies = [t for _s, _a, lat in results for t in lat]
    return WSResult(
        sim_time=machine.sim.now,
        tasks_stolen=sum(s for s, _a, _l in results),
        steal_attempts=sum(a for _s, a, _l in results),
        messages=machine.stats["net.msgs"],
        mean_steal_latency=(sum(all_latencies) / len(all_latencies)
                            if all_latencies else 0.0),
    )
