"""HPC Challenge RandomAccess (paper §IV-B).

The benchmark applies read-modify-write updates (xor) to random entries
of a table distributed over all images.  The random index stream is the
exact HPCC sequence ``x ← (x << 1) ⊕ (x < 0 ? POLY : 0)`` over 64 bits
with POLY = 7, with the standard jump-ahead (:func:`hpcc_starts`) so each
image owns a disjoint segment of the stream.

Two implementations, as in the paper:

- **get-update-put** (the HPCC reference style): each update fetches the
  table word with a blocking one-sided get, xors locally, and writes it
  back with a put.  It is *racy* — an update by another image can land
  between the get and the put — and each update costs two network round
  trips.  A bounded window of in-flight updates models the RDMA pipeline.
- **function shipping**: each update ships a tiny function to the owner
  image, which performs the read-modify-write on local memory —
  atomically, since the handler runs to completion.  Updates are grouped
  into *bunches*; a ``finish`` block encloses each bunch (the paper
  sweeps the bunch size in Fig. 14 and the number of finish invocations
  in Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.sim.tasks import Semaphore, all_of

#: the HPCC polynomial
POLY = np.uint64(7)
_PERIOD = 1317624576693539401  # period of the HPCC sequence


def hpcc_starts(n: int) -> int:
    """The n-th element of the HPCC random stream (jump-ahead).

    Direct port of the reference ``HPCC_starts``: square-and-multiply
    over the GF(2) companion matrix of the polynomial.
    """
    n = int(n) % _PERIOD
    if n == 0:
        return 1

    m2 = [0] * 64
    temp = 1
    for i in range(64):
        m2[i] = temp
        for _ in range(2):
            temp = ((temp << 1) ^ (POLY_INT if temp & TOP_BIT else 0)) & MASK

    i = 62
    while i >= 0 and not (n >> i) & 1:
        i -= 1

    ran = 2
    while i > 0:
        temp = 0
        for j in range(64):
            if (ran >> j) & 1:
                temp ^= m2[j]
        ran = temp
        i -= 1
        if (n >> i) & 1:
            ran = ((ran << 1) ^ (POLY_INT if ran & TOP_BIT else 0)) & MASK
    return ran


POLY_INT = 7
TOP_BIT = 1 << 63
MASK = (1 << 64) - 1


def hpcc_stream(start: int, count: int) -> np.ndarray:
    """``count`` successive values of the HPCC sequence from ``start``
    (vectorizable 64-bit LFSR step, exact HPCC semantics)."""
    out = np.empty(count, dtype=np.uint64)
    ran = start
    for i in range(count):
        ran = ((ran << 1) ^ (POLY_INT if ran & TOP_BIT else 0)) & MASK
        out[i] = ran
    return out


@dataclass
class RAConfig:
    """Run parameters (paper scale: table 2^22..2^23 words per image,
    bunch sizes 16..2048; defaults scaled for simulation)."""

    #: log2 of the table words per image
    log2_local_table: int = 10
    #: updates issued per image
    updates_per_image: int = 256
    #: "get-update-put" or "function-shipping"
    variant: str = "function-shipping"
    #: updates per finish block (function-shipping variant)
    bunch_size: int = 64
    #: max in-flight updates (get-update-put variant's RDMA window)
    window: int = 16
    #: position in the HPCC sequence where image 0's stream starts.
    #: Starting from position 0 the LFSR state is extremely sparse
    #: (powers of x stay sparse under GF(2) squaring), so low-order
    #: index bits are mostly zero and scaled tables see every update
    #: hammer slot 0.  Real HPCC amortizes this over millions of
    #: updates; scaled runs start at a generic (non-power-of-two)
    #: position where the state is dense and indexes are uniform.
    stream_offset: int = 999_983

    def __post_init__(self) -> None:
        if self.variant not in ("get-update-put", "function-shipping"):
            raise ValueError(f"unknown RandomAccess variant {self.variant!r}")
        if self.log2_local_table <= 0 or self.updates_per_image <= 0:
            raise ValueError("table and update counts must be positive")
        if self.bunch_size <= 0 or self.window <= 0:
            raise ValueError("bunch_size and window must be positive")


@dataclass
class RAResult:
    sim_time: float
    total_updates: int
    gups: float
    #: xor-reduction over the final table (for cross-variant checksums)
    checksum: int
    finish_blocks: int
    #: table entries that differ from a sequential re-application of the
    #: update stream (HPCC verification; nonzero = racy updates lost).
    #: None when verification was not requested.
    errors: Optional[int] = None
    #: chaos-mode transport counters (zero on a clean network)
    retransmits: int = 0
    drops: int = 0
    dups: int = 0
    #: race-detector findings (0 unless racecheck was enabled AND racy)
    races: int = 0

    @property
    def error_rate(self) -> Optional[float]:
        """HPCC accepts a run when < 1% of updates were lost."""
        if self.errors is None:
            return None
        return self.errors / self.total_updates


def _owner_and_index(ran: np.ndarray, n_images: int, local_size: int
                     ) -> tuple[np.ndarray, np.ndarray]:
    global_index = ran & np.uint64(n_images * local_size - 1)
    owner = (global_index // np.uint64(local_size)).astype(np.int64)
    local = (global_index % np.uint64(local_size)).astype(np.int64)
    return owner, local


def _update_entry(img, index: int, value: int) -> Generator[Any, Any, None]:
    """Shipped read-modify-write: runs where the table entry lives, so
    the get and put become local loads/stores and the update is atomic
    (§IV-B)."""
    table = img.machine.coarray_by_name("ra_table")
    local = table.local_at(img.rank)
    local[index] = np.uint64(local[index]) ^ np.uint64(value)
    yield from img.compute(2e-8)


def _kernel_function_shipping(img, config: RAConfig
                              ) -> Generator[Any, Any, int]:
    local_size = 2 ** config.log2_local_table
    stream = hpcc_stream(
        hpcc_starts(config.stream_offset
                    + config.updates_per_image * img.rank),
        config.updates_per_image)
    owners, locals_ = _owner_and_index(stream, img.nimages, local_size)

    finish_blocks = 0
    for start in range(0, config.updates_per_image, config.bunch_size):
        yield from img.finish_begin()
        finish_blocks += 1
        stop = min(start + config.bunch_size, config.updates_per_image)
        for i in range(start, stop):
            yield from img.compute(5e-8)  # index generation
            yield from img.spawn(_update_entry, int(owners[i]),
                                 int(locals_[i]), int(stream[i]))
        yield from img.finish_end()
    return finish_blocks


def _kernel_get_update_put(img, config: RAConfig
                           ) -> Generator[Any, Any, int]:
    table = img.machine.coarray_by_name("ra_table")
    local_size = 2 ** config.log2_local_table
    stream = hpcc_stream(
        hpcc_starts(config.stream_offset
                    + config.updates_per_image * img.rank),
        config.updates_per_image)
    owners, locals_ = _owner_and_index(stream, img.nimages, local_size)

    window = Semaphore(img.machine.sim, config.window, name="ra.window")
    in_flight = []

    def one_update(owner: int, index: int, value: int):
        # get -> local xor -> put: two dependent round trips, racy by
        # construction (another image can write between them).
        current = yield from img.get(table.ref(owner, index))
        updated = int(np.uint64(current) ^ np.uint64(value))
        yield from img.put(table.ref(owner, index), np.uint64(updated))
        window.release()

    for i in range(config.updates_per_image):
        yield from img.compute(5e-8)
        yield from window.acquire()
        task = img.machine.start_internal_task(
            one_update(int(owners[i]), int(locals_[i]), int(stream[i])),
            name=f"ra.update@{img.rank}",
        )
        in_flight.append(task.done_future)
    if in_flight:
        yield all_of(in_flight, "ra.drain")
    yield from img.barrier()
    return 0


def ra_kernel(img, config: RAConfig) -> Generator[Any, Any, int]:
    """SPMD main program; returns the number of finish blocks used."""
    if config.variant == "function-shipping":
        blocks = yield from _kernel_function_shipping(img, config)
    else:
        blocks = yield from _kernel_get_update_put(img, config)
    yield from img.barrier()
    return blocks


def reference_table(n_images: int, config: RAConfig) -> np.ndarray:
    """Sequentially apply every image's update stream to a fresh table —
    the HPCC verification oracle (race-free by construction)."""
    local_size = 2 ** config.log2_local_table
    table = np.arange(n_images * local_size, dtype=np.uint64)
    for r in range(n_images):
        stream = hpcc_stream(
            hpcc_starts(config.stream_offset
                        + config.updates_per_image * r),
            config.updates_per_image)
        index = stream & np.uint64(len(table) - 1)
        # np.bitwise_xor.at handles repeated indices correctly
        np.bitwise_xor.at(table, index.astype(np.int64), stream)
    return table


def _ra_setup(machine) -> None:
    config = machine.scratch["ra.setup_config"]
    local_size = 2 ** config.log2_local_table
    machine.coarray("ra_table", shape=local_size, dtype=np.uint64)
    # HPCC initialization: table[i] = global index i
    table = machine.coarray_by_name("ra_table")
    for r in range(machine.n_images):
        table.local_at(r)[:] = np.arange(
            r * local_size, (r + 1) * local_size, dtype=np.uint64)


def _ra_finalize(machine, rank: int) -> np.ndarray:
    """Per-worker probe: ship this rank's final table slice home."""
    return machine.coarray_by_name("ra_table").local_at(rank).copy()


def run_randomaccess(n_images: int, config: Optional[RAConfig] = None,
                     params=None, seed: int = 0,
                     verify: bool = False, faults=None,
                     racecheck: bool = False,
                     backend: str = "sim") -> RAResult:
    """Run RandomAccess; returns timing and the table checksum.

    With ``verify=True`` the final table is compared against a
    sequential re-application of the full update stream (HPCC's
    verification phase): the function-shipping variant must come back
    error-free, the racy get-update-put variant may lose updates.

    ``backend="process"`` runs the same kernel on real OS processes and
    assembles the table from each worker's slice; the xor checksum (and,
    for function shipping, the whole table) is schedule-invariant and
    must match the simulator — the cross-validation oracle (DESIGN §14).
    """
    config = config if config is not None else RAConfig()
    local_size = 2 ** config.log2_local_table
    if n_images & (n_images - 1):
        raise ValueError("RandomAccess needs a power-of-two image count")

    def setup(machine):
        machine.scratch["ra.setup_config"] = config
        _ra_setup(machine)

    if backend == "process":
        if faults is not None or racecheck:
            raise ValueError(
                "fault injection and race checking are simulator-only")
        from repro.backend.parallel import run_spmd_process

        run, blocks = run_spmd_process(
            ra_kernel, n_images, params=params, seed=seed,
            args=(config,), setup=setup, finalize=_ra_finalize)
        slices = run.extras
        checksum = 0
        for arr in slices:
            checksum ^= int(np.bitwise_xor.reduce(arr))
        total = config.updates_per_image * n_images
        errors = None
        if verify:
            expected = reference_table(n_images, config)
            final = np.concatenate(slices)
            errors = int(np.count_nonzero(final != expected))
        now = run.sim.now
        return RAResult(
            sim_time=now,
            total_updates=total,
            gups=total / now / 1e9 if now else 0.0,
            checksum=checksum,
            finish_blocks=sum(blocks),
            errors=errors,
            retransmits=run.stats["net.retransmits"],
            drops=run.stats["net.drops"],
            dups=run.stats["net.dups"],
        )

    from repro.runtime.program import run_spmd

    machine, blocks = run_spmd(ra_kernel, n_images, params=params,
                               seed=seed, args=(config,), setup=setup,
                               faults=faults, racecheck=racecheck)
    table = machine.coarray_by_name("ra_table")
    checksum = 0
    for r in range(n_images):
        checksum ^= int(np.bitwise_xor.reduce(table.local_at(r)))
    total = config.updates_per_image * n_images

    errors = None
    if verify:
        expected = reference_table(n_images, config)
        final = np.concatenate(
            [table.local_at(r) for r in range(n_images)])
        errors = int(np.count_nonzero(final != expected))

    return RAResult(
        sim_time=machine.sim.now,
        total_updates=total,
        gups=total / machine.sim.now / 1e9 if machine.sim.now else 0.0,
        checksum=checksum,
        finish_blocks=sum(blocks),
        errors=errors,
        retransmits=machine.stats["net.retransmits"],
        drops=machine.stats["net.drops"],
        dups=machine.stats["net.dups"],
        races=(machine.racecheck.race_count if racecheck else 0),
    )
