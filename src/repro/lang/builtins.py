"""Builtin functions and subroutines of the surface dialect.

Every builtin is a generator taking the executing image first (all may
block); expression builtins return a value.  The set mirrors the CAF 2.0
primitives the paper describes plus the small Fortran intrinsic kit its
listings use.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.runtime.event import EventRef, EventVar

#: builtins whose first argument is an event expression (resolved to an
#: EventVar/EventRef rather than evaluated as data)
EVENT_ARG_BUILTINS = {"event_wait", "event_notify"}


def _gen(fn):
    """Wrap a plain function as a no-yield generator builtin."""
    def wrapper(img, *args) -> Generator[Any, Any, Any]:
        return fn(img, *args)
        yield  # pragma: no cover
    wrapper.__name__ = fn.__name__
    return wrapper


# --------------------------------------------------------------------- #
# Image / machine introspection
# --------------------------------------------------------------------- #

@_gen
def this_image(img):
    """My 0-based rank (CAF 2.0 team-relative indexing)."""
    return img.rank


@_gen
def num_images(img):
    return img.nimages


@_gen
def random_image(img):
    """A uniformly random image other than this one (steal-victim
    selection; deterministic per machine seed)."""
    if img.nimages == 1:
        return 0
    victim = int(img.rng.integers(0, img.nimages - 1))
    return victim if victim < img.rank else victim + 1


@_gen
def random_int(img, lo, hi):
    """Uniform integer in [lo, hi] (inclusive, Fortran-style)."""
    return int(img.rng.integers(int(lo), int(hi) + 1))


# --------------------------------------------------------------------- #
# Fortran intrinsics
# --------------------------------------------------------------------- #

@_gen
def mod(img, a, b):
    return a % b


@_gen
def abs_(img, a):
    return abs(a)


@_gen
def min_(img, *args):
    return min(args)


@_gen
def max_(img, *args):
    return max(args)


@_gen
def size(img, arr):
    return int(np.size(arr))


@_gen
def sum_(img, arr):
    return np.asarray(arr).sum()


@_gen
def int_(img, x):
    return int(x)


@_gen
def real(img, x):
    return float(x)


# --------------------------------------------------------------------- #
# Synchronization and collectives
# --------------------------------------------------------------------- #

def event_wait(img, event, count=1) -> Generator[Any, Any, None]:
    """Block until my counter of ``event`` has ``count`` posts; consume
    them (acquire semantics)."""
    yield from img.event_wait(event, count=int(count))


def event_notify(img, event, count=1) -> Generator[Any, Any, None]:
    """Post ``event`` (release semantics; remote with ``e[p]``)."""
    yield from img.event_notify(event, count=int(count))


def team_barrier(img) -> Generator[Any, Any, None]:
    """Blocking team barrier (CAF 2.0's replacement for SYNC ALL)."""
    yield from img.barrier()


def lock(img, lockvar, team_rank=None) -> Generator[Any, Any, None]:
    """Acquire ``lockvar`` on the given image (default: here)."""
    rank = img.rank if team_rank is None else int(team_rank)
    yield from lockvar.acquire(img, rank)


def unlock(img, lockvar, team_rank=None) -> Generator[Any, Any, None]:
    """Release ``lockvar`` on the given image (one-way message)."""
    rank = img.rank if team_rank is None else int(team_rank)
    lockvar.release(img, rank)
    return
    yield  # pragma: no cover


def compute(img, seconds) -> Generator[Any, Any, None]:
    """Model local computation of the given duration."""
    yield from img.compute(float(seconds))


def allreduce(img, value, op="sum") -> Generator[Any, Any, Any]:
    yield from _noop()
    return (yield from img.allreduce(_pyvalue(value), op=op))


def team_reduce(img, value, root=0, op="sum") -> Generator[Any, Any, Any]:
    return (yield from img.reduce(_pyvalue(value), op=op, root=int(root)))


def team_broadcast(img, value, root=0) -> Generator[Any, Any, Any]:
    return (yield from img.broadcast(_pyvalue(value), root=int(root)))


def team_gather(img, value, root=0) -> Generator[Any, Any, Any]:
    return (yield from img.gather(_pyvalue(value), root=int(root)))


def team_allgather(img, value) -> Generator[Any, Any, Any]:
    return (yield from img.allgather(_pyvalue(value)))


def team_scan(img, value, op="sum") -> Generator[Any, Any, Any]:
    return (yield from img.scan(_pyvalue(value), op=op))


def world(img) -> Generator[Any, Any, Any]:
    """The world team (every image)."""
    return img.team_world
    yield  # pragma: no cover


def team_split(img, parent, color, key) -> Generator[Any, Any, Any]:
    """Collectively split ``parent`` by color, ordered by key (§II-A);
    returns my new team."""
    return (yield from img.team_split(parent, int(color), int(key)))


def team_size(img, team) -> Generator[Any, Any, int]:
    return team.size
    yield  # pragma: no cover


def team_rank(img, team) -> Generator[Any, Any, int]:
    """My rank within ``team``."""
    return team.rank_of(img.rank)
    yield  # pragma: no cover


def barrier_on(img, team) -> Generator[Any, Any, None]:
    yield from img.barrier(team=team)


def allreduce_on(img, team, value, op="sum") -> Generator[Any, Any, Any]:
    return (yield from img.allreduce(_pyvalue(value), op=op, team=team))


def broadcast_on(img, team, value, root=0) -> Generator[Any, Any, Any]:
    return (yield from img.broadcast(_pyvalue(value), root=int(root),
                                     team=team))


def _noop():
    return
    yield  # pragma: no cover


def _pyvalue(value):
    """numpy scalars confuse user-supplied reduce ops; normalize."""
    if isinstance(value, np.generic):
        return value.item()
    return value


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

_BUILTINS = {
    "this_image": this_image,
    "num_images": num_images,
    "random_image": random_image,
    "random_int": random_int,
    "mod": mod,
    "abs": abs_,
    "min": min_,
    "max": max_,
    "size": size,
    "sum": sum_,
    "int": int_,
    "real": real,
    "event_wait": event_wait,
    "event_notify": event_notify,
    "team_barrier": team_barrier,
    "barrier": team_barrier,
    "lock": lock,
    "unlock": unlock,
    "compute": compute,
    "allreduce": allreduce,
    "team_reduce": team_reduce,
    "team_broadcast": team_broadcast,
    "team_gather": team_gather,
    "team_allgather": team_allgather,
    "team_scan": team_scan,
    "world": world,
    "team_split": team_split,
    "team_size": team_size,
    "team_rank": team_rank,
    "barrier_on": barrier_on,
    "allreduce_on": allreduce_on,
    "broadcast_on": broadcast_on,
}


def lookup(name: str):
    """The builtin generator for ``name``, or None."""
    return _BUILTINS.get(name.lower())
