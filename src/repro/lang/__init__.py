"""A CAF 2.0 surface-syntax frontend.

The paper's constructs are *language* constructs — ``finish``/``end
finish`` blocks, ``cofence(DOWNWARD=WRITE)``, ``spawn foo(A[p])[p]``,
predicated ``copy_async`` — embedded in a Fortran dialect.  This package
implements a small interpreter for that surface syntax so the paper's
program listings can be executed (almost) verbatim against the runtime:

- :mod:`repro.lang.lexer` — tokens for a line-oriented Fortran-ish
  dialect (case-insensitive keywords, ``!`` comments);
- :mod:`repro.lang.ast_nodes` — the abstract syntax tree;
- :mod:`repro.lang.parser` — recursive-descent parser;
- :mod:`repro.lang.interpreter` — a tree-walking evaluator in which
  every statement executes inside the simulated image's task, so
  remote reads/writes, spawns and synchronization cost what they
  should.

Entry point::

    from repro.lang import run_program
    machine, results = run_program(source, n_images=8)

See ``examples/caf/`` for runnable programs, including the paper's
Fig. 3 work-stealing function and Fig. 11 micro-benchmark.
"""

from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse
from repro.lang.interpreter import CafError, run_program, Interpreter

__all__ = [
    "tokenize",
    "LexError",
    "parse",
    "ParseError",
    "run_program",
    "Interpreter",
    "CafError",
]
