"""Recursive-descent parser for the CAF 2.0 surface dialect."""

from __future__ import annotations

from typing import Optional

from repro.lang.lexer import Token, tokenize
from repro.lang import ast_nodes as A


class ParseError(SyntaxError):
    """Malformed program text, with line information."""


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------- #

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def match(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.check(kind, value):
            want = value if value is not None else kind
            found = tok.value or tok.kind
            raise ParseError(
                f"line {tok.line}: expected {want!r}, found {found!r}")
        return self.advance()

    def skip_newlines(self) -> None:
        while self.match("NEWLINE"):
            pass

    def end_of_statement(self) -> None:
        tok = self.peek()
        if tok.kind == "EOF":
            return
        if not self.match("NEWLINE"):
            raise ParseError(
                f"line {tok.line}: unexpected {tok.value!r} at end of "
                "statement")

    # -- program structure ------------------------------------------------ #

    def parse_program(self) -> A.Program:
        self.skip_newlines()
        self.expect("KEYWORD", "program")
        name = self.expect("NAME").value
        self.end_of_statement()
        body = self.parse_statements(until=("program",))
        self.expect("KEYWORD", "end")
        self.expect("KEYWORD", "program")
        self.match("NAME")
        self.skip_newlines()

        functions: dict[str, A.FunctionDef] = {}
        while not self.check("EOF"):
            fn = self.parse_function()
            if fn.name in functions:
                raise ParseError(f"function {fn.name!r} defined twice")
            functions[fn.name] = fn
            self.skip_newlines()
        return A.Program(name=name, body=tuple(body), functions=functions)

    def parse_function(self) -> A.FunctionDef:
        kw = self.peek()
        if not (self.check("KEYWORD", "function")
                or self.check("KEYWORD", "subroutine")):
            raise ParseError(
                f"line {kw.line}: expected a function or subroutine "
                f"definition, found {kw.value!r}")
        kind = self.advance().value
        name = self.expect("NAME").value
        params = []
        self.expect("OP", "(")
        if not self.check("OP", ")"):
            params.append(self.expect("NAME").value)
            while self.match("OP", ","):
                params.append(self.expect("NAME").value)
        self.expect("OP", ")")
        self.end_of_statement()
        body = self.parse_statements(until=("function", "subroutine"))
        self.expect("KEYWORD", "end")
        self.expect("KEYWORD", kind)
        self.match("NAME")
        self.end_of_statement()
        return A.FunctionDef(name=name, params=tuple(params),
                             body=tuple(body))

    # -- statements --------------------------------------------------------- #

    def parse_statements(self, until: tuple) -> list:
        """Parse statements until ``end <kw>`` for a kw in ``until`` (or
        an ``else``/``elseif`` when inside an if)."""
        out = []
        while True:
            self.skip_newlines()
            if self.check("EOF"):
                raise ParseError("unexpected end of file inside a block")
            if self.check("KEYWORD", "end"):
                nxt = self.peek(1)
                if nxt.kind == "KEYWORD" and nxt.value in until:
                    return out
                raise ParseError(
                    f"line {self.peek().line}: mismatched 'end "
                    f"{nxt.value}' (open block expects one of {until})")
            if self.check("KEYWORD", "else") or self.check("KEYWORD",
                                                           "elseif"):
                return out
            out.append(self.parse_statement())

    def parse_statement(self) -> A.Stmt:
        tok = self.peek()
        if tok.kind == "KEYWORD":
            handler = {
                "integer": self.parse_decl, "real": self.parse_decl,
                "logical": self.parse_decl, "event": self.parse_decl,
                "lock": self.parse_decl, "team": self.parse_decl,
                "call": self.parse_call_stmt,
                "if": self.parse_if,
                "do": self.parse_do,
                "finish": self.parse_finish,
                "cofence": self.parse_cofence,
                "copy_async": self.parse_copy_async,
                "spawn": self.parse_spawn,
                "print": self.parse_print,
                "return": self.parse_return,
                "exit": self.parse_exit,
                "cycle": self.parse_cycle,
            }.get(tok.value)
            if handler is None:
                raise ParseError(
                    f"line {tok.line}: unexpected keyword {tok.value!r}")
            return handler()
        if tok.kind == "NAME":
            return self.parse_assignment()
        raise ParseError(
            f"line {tok.line}: cannot start a statement with "
            f"{tok.value!r}")

    def parse_decl(self) -> A.Decl:
        type_tok = self.advance()
        self.expect("OP", "::")
        items = [self._decl_item(type_tok.value)]
        while self.match("OP", ","):
            items.append(self._decl_item(type_tok.value))
        self.end_of_statement()
        if len(items) == 1:
            return items[0]
        # represent multi-declarations as an If-less grouping: flatten by
        # returning a tuple is awkward; emit a synthetic block instead.
        return A.If(condition=A.Bool(True), then_body=tuple(items),
                    else_body=())

    def _decl_item(self, type_name: str) -> A.Decl:
        name = self.expect("NAME").value
        shape = None
        codim = False
        if self.match("OP", "("):
            shape = self.parse_expression()
            self.expect("OP", ")")
        if self.match("OP", "["):
            self.expect("OP", "*")
            self.expect("OP", "]")
            codim = True
        return A.Decl(type_name=type_name, name=name, shape=shape,
                      codimension=codim)

    def parse_assignment(self) -> A.Assign:
        target = self.parse_postfix()
        if not isinstance(target, (A.Var, A.Index)):
            raise ParseError("assignment target must be a variable or "
                             "an element/section selection")
        self.expect("OP", "=")
        value = self.parse_expression()
        self.end_of_statement()
        return A.Assign(target=target, value=value)

    def parse_call_stmt(self) -> A.CallStmt:
        self.expect("KEYWORD", "call")
        # `lock` is a declaration keyword but also a callable builtin
        if self.check("KEYWORD", "lock"):
            name = self.advance().value
        else:
            name = self.expect("NAME").value
        args: list = []
        if self.match("OP", "("):
            if not self.check("OP", ")"):
                args.append(self.parse_expression())
                while self.match("OP", ","):
                    args.append(self.parse_expression())
            self.expect("OP", ")")
        self.end_of_statement()
        return A.CallStmt(A.Call(name=name, args=tuple(args)))

    def parse_if(self) -> A.If:
        self.expect("KEYWORD", "if")
        self.expect("OP", "(")
        condition = self.parse_expression()
        self.expect("OP", ")")
        self.expect("KEYWORD", "then")
        self.end_of_statement()
        then_body = self.parse_statements(until=("if",))
        else_body: list = []
        if self.match("KEYWORD", "else"):
            if self.check("KEYWORD", "if"):
                else_body = [self.parse_if()]
                return A.If(condition, tuple(then_body), tuple(else_body))
            self.end_of_statement()
            else_body = self.parse_statements(until=("if",))
        elif self.check("KEYWORD", "elseif"):
            self.advance()
            # rewrite `elseif (...)` as `else` + nested `if`
            self.tokens.insert(self.pos, Token("KEYWORD", "if", 0, 0))
            else_body = [self.parse_if()]
            return A.If(condition, tuple(then_body), tuple(else_body))
        self.expect("KEYWORD", "end")
        self.expect("KEYWORD", "if")
        self.end_of_statement()
        return A.If(condition, tuple(then_body), tuple(else_body))

    def parse_do(self) -> A.Stmt:
        self.expect("KEYWORD", "do")
        if self.match("KEYWORD", "while"):
            self.expect("OP", "(")
            condition = self.parse_expression()
            self.expect("OP", ")")
            self.end_of_statement()
            body = self.parse_statements(until=("do",))
            self.expect("KEYWORD", "end")
            self.expect("KEYWORD", "do")
            self.end_of_statement()
            return A.DoWhile(condition=condition, body=tuple(body))
        var = self.expect("NAME").value
        self.expect("OP", "=")
        start = self.parse_expression()
        self.expect("OP", ",")
        stop = self.parse_expression()
        step = None
        if self.match("OP", ","):
            step = self.parse_expression()
        self.end_of_statement()
        body = self.parse_statements(until=("do",))
        self.expect("KEYWORD", "end")
        self.expect("KEYWORD", "do")
        self.end_of_statement()
        return A.Do(var=var, start=start, stop=stop, step=step,
                    body=tuple(body))

    def parse_finish(self) -> A.Finish:
        self.expect("KEYWORD", "finish")
        team = None
        if self.match("OP", "("):
            team = self.parse_expression()
            self.expect("OP", ")")
        self.end_of_statement()
        body = self.parse_statements(until=("finish",))
        self.expect("KEYWORD", "end")
        self.expect("KEYWORD", "finish")
        self.end_of_statement()
        return A.Finish(body=tuple(body), team=team)

    def parse_cofence(self) -> A.Cofence:
        self.expect("KEYWORD", "cofence")
        downward = upward = None
        if self.match("OP", "("):
            while not self.check("OP", ")"):
                key = self.advance()
                if key.kind not in ("NAME", "KEYWORD"):
                    raise ParseError(
                        f"line {key.line}: bad cofence argument")
                self.expect("OP", "=")
                val = self.advance()
                direction = key.value.lower()
                value = val.value.lower()
                if direction == "downward":
                    downward = value
                elif direction == "upward":
                    upward = value
                else:
                    raise ParseError(
                        f"line {key.line}: cofence takes DOWNWARD/UPWARD, "
                        f"not {key.value!r}")
                if not self.match("OP", ","):
                    break
            self.expect("OP", ")")
        self.end_of_statement()
        return A.Cofence(downward=downward, upward=upward)

    def parse_copy_async(self) -> A.CopyAsync:
        self.expect("KEYWORD", "copy_async")
        self.expect("OP", "(")
        dest = self.parse_expression()
        self.expect("OP", ",")
        src = self.parse_expression()
        events: list = []
        while self.match("OP", ","):
            events.append(self.parse_expression())
        self.expect("OP", ")")
        self.end_of_statement()
        if len(events) > 3:
            raise ParseError("copy_async takes at most 3 event arguments "
                             "(pre, src, dest)")
        return A.CopyAsync(dest=dest, src=src, events=tuple(events))

    def parse_spawn(self) -> A.Spawn:
        self.expect("KEYWORD", "spawn")
        event = None
        if self.match("OP", "("):
            event = self.parse_expression()
            self.expect("OP", ")")
        name = self.expect("NAME").value
        args: list = []
        self.expect("OP", "(")
        if not self.check("OP", ")"):
            args.append(self.parse_expression())
            while self.match("OP", ","):
                args.append(self.parse_expression())
        self.expect("OP", ")")
        self.expect("OP", "[")
        image = self.parse_expression()
        self.expect("OP", "]")
        self.end_of_statement()
        return A.Spawn(function=name, args=tuple(args), image=image,
                       event=event)

    def parse_print(self) -> A.Print:
        self.expect("KEYWORD", "print")
        self.expect("OP", "*")
        values: list = []
        while self.match("OP", ","):
            values.append(self.parse_expression())
        self.end_of_statement()
        return A.Print(values=tuple(values))

    def parse_return(self) -> A.Return:
        self.expect("KEYWORD", "return")
        value = None
        if not self.check("NEWLINE") and not self.check("EOF"):
            value = self.parse_expression()
        self.end_of_statement()
        return A.Return(value=value)

    def parse_exit(self) -> A.Exit:
        self.expect("KEYWORD", "exit")
        self.end_of_statement()
        return A.Exit()

    def parse_cycle(self) -> A.Cycle:
        self.expect("KEYWORD", "cycle")
        self.end_of_statement()
        return A.Cycle()

    # -- expressions ---------------------------------------------------------- #

    def parse_expression(self) -> A.Expr:
        return self.parse_or()

    def parse_or(self) -> A.Expr:
        left = self.parse_and()
        while self.match("KEYWORD", "or"):
            left = A.BinOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> A.Expr:
        left = self.parse_not()
        while self.match("KEYWORD", "and"):
            left = A.BinOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> A.Expr:
        if self.match("KEYWORD", "not"):
            return A.UnaryOp("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> A.Expr:
        left = self.parse_additive()
        for op in ("==", "/=", "<=", ">=", "<", ">"):
            if self.check("OP", op):
                self.advance()
                return A.BinOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> A.Expr:
        left = self.parse_multiplicative()
        while self.check("OP", "+") or self.check("OP", "-"):
            op = self.advance().value
            left = A.BinOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> A.Expr:
        left = self.parse_power()
        while self.check("OP", "*") or self.check("OP", "/"):
            op = self.advance().value
            left = A.BinOp(op, left, self.parse_power())
        return left

    def parse_power(self) -> A.Expr:
        left = self.parse_unary()
        if self.match("OP", "**"):
            return A.BinOp("**", left, self.parse_power())
        return left

    def parse_unary(self) -> A.Expr:
        if self.match("OP", "-"):
            return A.UnaryOp("-", self.parse_unary())
        if self.match("OP", "+"):
            return self.parse_unary()
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        atom = self.parse_atom()
        if not isinstance(atom, A.Var):
            return atom
        selector = None
        image = None
        is_multi_arg_call = False
        args: list = []
        if self.match("OP", "("):
            if self.check("OP", ")"):
                self.advance()
                return A.Call(name=atom.name)
            first = self.parse_index_item()
            args.append(first)
            while self.match("OP", ","):
                is_multi_arg_call = True
                args.append(self.parse_index_item())
            self.expect("OP", ")")
            if is_multi_arg_call:
                for a in args:
                    if isinstance(a, A.Slice):
                        raise ParseError("slices are not call arguments")
                return A.Call(name=atom.name, args=tuple(args))
            selector = first
        if self.match("OP", "["):
            image = self.parse_expression()
            self.expect("OP", "]")
        if selector is None and image is None:
            return atom
        return A.Index(base=atom, selector=selector, image=image)

    def parse_index_item(self):
        """One item inside parentheses: an expression or a lo:hi slice."""
        if self.check("OP", ":"):
            self.advance()
            hi = None if self.check("OP", ")") or self.check("OP", ",") \
                else self.parse_expression()
            return A.Slice(lo=None, hi=hi)
        expr = self.parse_expression()
        if self.match("OP", ":"):
            hi = None if self.check("OP", ")") or self.check("OP", ",") \
                else self.parse_expression()
            return A.Slice(lo=expr, hi=hi)
        return expr

    def parse_atom(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "INT":
            self.advance()
            return A.Num(int(tok.value))
        if tok.kind == "FLOAT":
            self.advance()
            return A.Num(float(tok.value))
        if tok.kind == "STRING":
            self.advance()
            return A.Str(tok.value)
        if tok.kind == "KEYWORD" and tok.value in ("true", "false"):
            self.advance()
            return A.Bool(tok.value == "true")
        if tok.kind == "KEYWORD" and tok.value == "real" \
                and self.peek(1).kind == "OP" and self.peek(1).value == "(":
            # `real(x)` the conversion intrinsic, not the type keyword
            self.advance()
            return A.Var("real")
        if tok.kind == "NAME":
            self.advance()
            return A.Var(tok.value)
        if self.match("OP", "("):
            inner = self.parse_expression()
            self.expect("OP", ")")
            return inner
        raise ParseError(
            f"line {tok.line}: expected an expression, found "
            f"{(tok.value or tok.kind)!r}")


def parse(source: str) -> A.Program:
    """Parse a whole program file."""
    return Parser(tokenize(source)).parse_program()
