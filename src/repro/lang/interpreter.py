"""Tree-walking interpreter: CAF 2.0 surface programs on the runtime.

Every image executes the program body as its SPMD main activation;
statements run inside the simulated task, so remote accesses, spawns and
synchronization constructs cost (and mean) exactly what the runtime
makes them cost.

Semantics notes
---------------
- Arrays are 1-based with inclusive slices, Fortran-style; image ranks
  are 0-based, matching CAF 2.0 team ranks (``this_image()`` of the
  first image is 0).
- ``name(1)[p]`` reads/writes image p's section with blocking one-sided
  get/put; ``copy_async`` is the asynchronous path.
- ``copy_async(dest, src, ...)`` takes up to three optional events:
  one event means the *destination* (delivery) event; two mean
  ``(src_event, dest_event)``; three mean ``(pre, src, dest)`` as in
  the paper's full signature.
- Spawn arguments follow §II-C.2: ``a[p]`` (a coarray section) travels
  by reference, plain values are copied.
- Functions/subroutines see the program's coarrays and events but not
  the caller's locals (no closures), and may be shipped with ``spawn``
  or invoked locally with ``call``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.runtime.coarray import Coarray, CoarrayRef
from repro.runtime.event import EventRef, EventVar
from repro.lang import ast_nodes as A
from repro.lang.parser import parse


class CafError(RuntimeError):
    """Semantic error while executing a surface program."""


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


class _ExitSignal(Exception):
    pass


class _CycleSignal(Exception):
    pass


_DTYPES = {"integer": np.int64, "real": np.float64, "logical": np.bool_}


class Scope:
    """A name-binding chain: locals over program globals."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.names: dict[str, Any] = {}
        self.parent = parent

    def lookup(self, name: str) -> Any:
        scope = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        raise CafError(f"name {name!r} is not declared")

    def has(self, name: str) -> bool:
        scope = self
        while scope is not None:
            if name in scope.names:
                return True
            scope = scope.parent
        return False

    def set(self, name: str, value: Any) -> None:
        scope = self
        while scope is not None:
            if name in scope.names:
                scope.names[name] = value
                return
            scope = scope.parent
        self.names[name] = value

    def declare(self, name: str, value: Any) -> None:
        self.names[name] = value


class Interpreter:
    """Executes one parsed :class:`~repro.lang.ast_nodes.Program`."""

    def __init__(self, program: A.Program):
        self.program = program

    # ------------------------------------------------------------------ #
    # Launch
    # ------------------------------------------------------------------ #

    def run(self, n_images: int, params=None, seed: int = 0,
            capture_prints: bool = False):
        """Run the program SPMD; returns ``(machine, per-image results,
        printed lines)``."""
        from repro.runtime.program import Machine

        machine = Machine(n_images, params=params, seed=seed)
        prints: list[str] = []
        globals_scope = Scope()
        self._allocate_codimensioned(machine, globals_scope)
        machine.scratch["lang.prints"] = prints
        machine.scratch["lang.capture"] = capture_prints
        machine.scratch["lang.globals"] = globals_scope

        interp = self

        def kernel(img):
            env = Scope(parent=globals_scope)
            try:
                yield from interp.exec_block(img, env, interp.program.body)
            except _ReturnSignal as ret:
                return ret.value
            return None

        machine.launch(kernel)
        results = machine.run()
        return machine, results, prints

    def _allocate_codimensioned(self, machine, globals_scope: Scope) -> None:
        """Coarrays and team events are allocation-domain objects: hoist
        every co-dimensioned top-level declaration to machine setup."""
        for stmt in _iter_decls(self.program.body):
            if not stmt.codimension:
                continue
            if stmt.type_name == "event":
                ev = machine.make_event(name=stmt.name)
                globals_scope.declare(stmt.name, ev)
            elif stmt.type_name == "lock":
                lk = machine.make_lock(name=stmt.name)
                globals_scope.declare(stmt.name, lk)
            else:
                shape = 1
                if stmt.shape is not None:
                    shape = _const_int(stmt.shape)
                arr = machine.coarray(stmt.name, shape=shape,
                                      dtype=_DTYPES[stmt.type_name])
                globals_scope.declare(stmt.name, arr)

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #

    def exec_block(self, img, env: Scope, stmts) -> Generator:
        for stmt in stmts:
            yield from self.exec_stmt(img, env, stmt)

    def exec_stmt(self, img, env: Scope, stmt) -> Generator:
        method = getattr(self, f"_exec_{type(stmt).__name__.lower()}", None)
        if method is None:
            raise CafError(f"cannot execute {type(stmt).__name__}")
        yield from method(img, env, stmt)

    def _exec_decl(self, img, env: Scope, stmt: A.Decl) -> Generator:
        if stmt.codimension:
            # already hoisted for top-level; inside functions it is an error
            if not env.has(stmt.name):
                raise CafError(
                    f"coarray {stmt.name!r} must be declared at program "
                    "level (allocation is a team activity)")
            return
        if stmt.type_name in ("event", "lock"):
            raise CafError(
                f"{stmt.type_name}s must be declared with a co-dimension "
                "([*]) — they coordinate between images")
        if stmt.type_name == "team":
            # a team handle, initialized to the world team (§II-A)
            env.declare(stmt.name, img.team_world)
            return
        dtype = _DTYPES[stmt.type_name]
        if stmt.shape is None:
            env.declare(stmt.name, dtype(0))
        else:
            extent = yield from self.eval(img, env, stmt.shape)
            env.declare(stmt.name, np.zeros(int(extent), dtype=dtype))
        return
        yield  # pragma: no cover

    def _exec_if(self, img, env: Scope, stmt: A.If) -> Generator:
        condition = yield from self.eval(img, env, stmt.condition)
        branch = stmt.then_body if condition else stmt.else_body
        yield from self.exec_block(img, env, branch)

    def _exec_do(self, img, env: Scope, stmt: A.Do) -> Generator:
        start = int((yield from self.eval(img, env, stmt.start)))
        stop = int((yield from self.eval(img, env, stmt.stop)))
        step = 1
        if stmt.step is not None:
            step = int((yield from self.eval(img, env, stmt.step)))
            if step == 0:
                raise CafError("do-loop step must be nonzero")
        env.set(stmt.var, np.int64(start))
        i = start
        while (i <= stop) if step > 0 else (i >= stop):
            env.set(stmt.var, np.int64(i))
            try:
                yield from self.exec_block(img, env, stmt.body)
            except _ExitSignal:
                break
            except _CycleSignal:
                pass
            i += step

    def _exec_dowhile(self, img, env: Scope, stmt: A.DoWhile) -> Generator:
        while True:
            condition = yield from self.eval(img, env, stmt.condition)
            if not condition:
                break
            try:
                yield from self.exec_block(img, env, stmt.body)
            except _ExitSignal:
                break
            except _CycleSignal:
                continue

    def _exec_exit(self, img, env, stmt) -> Generator:
        raise _ExitSignal()
        yield  # pragma: no cover

    def _exec_cycle(self, img, env, stmt) -> Generator:
        raise _CycleSignal()
        yield  # pragma: no cover

    def _exec_return(self, img, env: Scope, stmt: A.Return) -> Generator:
        value = None
        if stmt.value is not None:
            value = yield from self.eval(img, env, stmt.value)
        raise _ReturnSignal(value)

    def _exec_finish(self, img, env: Scope, stmt: A.Finish) -> Generator:
        from repro.runtime.team import Team

        team = None
        if stmt.team is not None:
            team = yield from self.eval(img, env, stmt.team)
            if not isinstance(team, Team):
                raise CafError("finish(...) expects a team value")
        yield from img.finish_begin(team=team)
        try:
            yield from self.exec_block(img, env, stmt.body)
        finally:
            yield from img.finish_end()

    def _exec_cofence(self, img, env: Scope, stmt: A.Cofence) -> Generator:
        yield from img.cofence(downward=_direction(stmt.downward),
                               upward=_direction(stmt.upward))

    def _exec_print(self, img, env: Scope, stmt: A.Print) -> Generator:
        parts = []
        for expr in stmt.values:
            value = yield from self.eval(img, env, expr)
            parts.append(str(value))
        line = f"[img {img.rank} @ {img.now * 1e6:.2f}us] " + " ".join(parts)
        img.machine.scratch["lang.prints"].append(line)
        if not img.machine.scratch["lang.capture"]:
            print(line)

    def _exec_assign(self, img, env: Scope, stmt: A.Assign) -> Generator:
        value = yield from self.eval(img, env, stmt.value)
        yield from self.store(img, env, stmt.target, value)

    def _exec_callstmt(self, img, env: Scope, stmt: A.CallStmt) -> Generator:
        yield from self.eval_call(img, env, stmt.call, statement=True)

    def _exec_copyasync(self, img, env: Scope, stmt: A.CopyAsync) -> Generator:
        dest = yield from self.eval_location(img, env, stmt.dest, "dest")
        src = yield from self.eval_location(img, env, stmt.src, "src")
        events = []
        for e in stmt.events:
            events.append((yield from self.eval_event(img, env, e)))
        pre = src_ev = dest_ev = None
        if len(events) == 1:
            dest_ev = events[0]
        elif len(events) == 2:
            src_ev, dest_ev = events
        elif len(events) == 3:
            pre, src_ev, dest_ev = events
        img.copy_async(dest, src, pre_event=pre, src_event=src_ev,
                       dest_event=dest_ev)
        return
        yield  # pragma: no cover

    def _exec_spawn(self, img, env: Scope, stmt: A.Spawn) -> Generator:
        fn_def = self.program.functions.get(stmt.function)
        if fn_def is None:
            raise CafError(f"spawn of unknown function {stmt.function!r}")
        target = int((yield from self.eval(img, env, stmt.image)))
        args = []
        for arg in stmt.args:
            args.append((yield from self.eval_spawn_arg(img, env, arg)))
        if len(args) != len(fn_def.params):
            raise CafError(
                f"{stmt.function} takes {len(fn_def.params)} argument(s), "
                f"spawn passed {len(args)}")
        event = None
        if stmt.event is not None:
            event = yield from self.eval_event(img, env, stmt.event)
        shipped = self.make_function(fn_def)
        yield from img.spawn(shipped, target, *args, event=event)

    # ------------------------------------------------------------------ #
    # Functions
    # ------------------------------------------------------------------ #

    def make_function(self, fn_def: A.FunctionDef):
        """Wrap a FunctionDef as a runtime-shippable generator function."""
        interp = self

        def caf_function(img, *args):
            machine = img.machine
            globals_scope = machine.scratch["lang.globals"]
            env = Scope(parent=globals_scope)
            for param, value in zip(fn_def.params, args):
                env.declare(param, value)
            try:
                yield from interp.exec_block(img, env, fn_def.body)
            except _ReturnSignal as ret:
                return ret.value
            return None

        caf_function.__name__ = fn_def.name
        return caf_function

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #

    def eval(self, img, env: Scope, expr) -> Generator:
        if isinstance(expr, A.Num):
            return expr.value
        if isinstance(expr, A.Str):
            return expr.value
        if isinstance(expr, A.Bool):
            return expr.value
        if isinstance(expr, A.Var):
            value = env.lookup(expr.name)
            if isinstance(value, Coarray):
                img._rc_access(CoarrayRef(value, img.rank, slice(None)),
                               write=False)
                return value.local_at(img.rank)
            if isinstance(value, CoarrayRef):
                # a by-reference spawn argument: reads go through the ref
                if value.world_rank == img.rank:
                    img._rc_access(value, write=False)
                    return _scalarize(value.read())
                got = yield from img.get(value)
                return _scalarize(got)
            return value
        if isinstance(expr, A.UnaryOp):
            operand = yield from self.eval(img, env, expr.operand)
            return (not operand) if expr.op == "not" else -operand
        if isinstance(expr, A.BinOp):
            return (yield from self.eval_binop(img, env, expr))
        if isinstance(expr, A.Call):
            return (yield from self.eval_call(img, env, expr))
        if isinstance(expr, A.Index):
            return (yield from self.eval_index_read(img, env, expr))
        raise CafError(f"cannot evaluate {type(expr).__name__}")

    def eval_binop(self, img, env: Scope, expr: A.BinOp) -> Generator:
        left = yield from self.eval(img, env, expr.left)
        if expr.op == "and":
            if not left:
                return False
            right = yield from self.eval(img, env, expr.right)
            return bool(right)
        if expr.op == "or":
            if left:
                return True
            right = yield from self.eval(img, env, expr.right)
            return bool(right)
        right = yield from self.eval(img, env, expr.right)
        ops = {
            "+": lambda a, b: a + b, "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": _fortran_divide,
            "**": lambda a, b: a ** b,
            "==": lambda a, b: a == b, "/=": lambda a, b: a != b,
            "<": lambda a, b: a < b, ">": lambda a, b: a > b,
            "<=": lambda a, b: a <= b, ">=": lambda a, b: a >= b,
        }
        return ops[expr.op](left, right)

    def eval_index_read(self, img, env: Scope, expr: A.Index) -> Generator:
        base_name = expr.base.name if isinstance(expr.base, A.Var) else None
        if base_name is not None and not env.has(base_name) \
                and expr.image is None \
                and not isinstance(expr.selector, A.Slice):
            # `name(x)` where name is not a variable: a one-argument call
            # (the classic Fortran indexing/call ambiguity).
            call = A.Call(name=base_name, args=(expr.selector,))
            return (yield from self.eval_call(img, env, call))
        if base_name is None or not env.has(base_name):
            raise CafError(f"unknown array {base_name!r}")
        obj = env.lookup(base_name)
        if isinstance(obj, EventVar):
            raise CafError(
                f"event {base_name!r} cannot be read; use event_wait")
        if isinstance(obj, Coarray):
            rank = img.rank
            if expr.image is not None:
                rank = int((yield from self.eval(img, env, expr.image)))
                rank = _team_rank_to_world(img, rank)
            index = yield from self.eval_selector(img, env, expr.selector,
                                                  obj.local_at(img.rank))
            if rank == img.rank:
                img._rc_access(CoarrayRef(obj, rank, index), write=False)
                return _scalarize(obj.local_at(rank)[index])
            value = yield from img.get(CoarrayRef(obj, rank, index))
            return _scalarize(value)
        # plain local array
        if expr.image is not None:
            raise CafError(
                f"{base_name!r} is not a coarray; it has no co-dimension")
        arr = obj
        index = yield from self.eval_selector(img, env, expr.selector, arr)
        return _scalarize(np.asarray(arr)[index])

    def eval_selector(self, img, env: Scope, selector, arr) -> Generator:
        """Translate a 1-based Fortran selector to a numpy index."""
        if selector is None:
            return slice(None)
        if isinstance(selector, A.Slice):
            lo = 1 if selector.lo is None else int(
                (yield from self.eval(img, env, selector.lo)))
            hi = len(arr) if selector.hi is None else int(
                (yield from self.eval(img, env, selector.hi)))
            _check_bounds(lo, len(arr))
            _check_bounds(hi, len(arr))
            return slice(lo - 1, hi)
        value = int((yield from self.eval(img, env, selector)))
        _check_bounds(value, len(arr))
        return value - 1

    # -- locations (copy_async endpoints) -------------------------------- #

    def eval_location(self, img, env: Scope, expr, what: str) -> Generator:
        """A data location: CoarrayRef for coarrays, numpy view for
        locals."""
        if isinstance(expr, A.Var):
            obj = env.lookup(expr.name)
            if isinstance(obj, Coarray):
                return CoarrayRef(obj, img.rank, slice(None))
            if isinstance(obj, np.ndarray):
                return obj
            raise CafError(
                f"copy_async {what} {expr.name!r} must be an array")
        if isinstance(expr, A.Index) and isinstance(expr.base, A.Var):
            obj = env.lookup(expr.base.name)
            if isinstance(obj, Coarray):
                rank = img.rank
                if expr.image is not None:
                    rank = int((yield from self.eval(img, env, expr.image)))
                    rank = _team_rank_to_world(img, rank)
                index = yield from self.eval_selector(
                    img, env, expr.selector, obj.local_at(img.rank))
                return CoarrayRef(obj, rank, index)
            if isinstance(obj, np.ndarray):
                if expr.image is not None:
                    raise CafError(
                        f"{expr.base.name!r} has no co-dimension")
                index = yield from self.eval_selector(img, env,
                                                      expr.selector, obj)
                view = obj[index if isinstance(index, slice)
                           else slice(index, index + 1)]
                return view
        raise CafError(f"invalid copy_async {what} expression")

    def eval_event(self, img, env: Scope, expr) -> Generator:
        if isinstance(expr, A.Var):
            obj = env.lookup(expr.name)
            if isinstance(obj, (EventVar, EventRef)):
                return obj
            raise CafError(f"{expr.name!r} is not an event")
        if isinstance(expr, A.Index) and isinstance(expr.base, A.Var):
            obj = env.lookup(expr.base.name)
            if isinstance(obj, EventVar):
                if expr.selector is not None:
                    raise CafError("events are scalars; use e[p]")
                rank = int((yield from self.eval(img, env, expr.image)))
                return obj.ref_for(_team_rank_to_world(img, rank))
        raise CafError("expected an event or event[image]")

    def eval_spawn_arg(self, img, env: Scope, expr) -> Generator:
        """§II-C.2 argument semantics: coarray sections and events by
        reference, everything else by value."""
        if isinstance(expr, A.Var) and env.has(expr.name):
            obj = env.lookup(expr.name)
            if isinstance(obj, (Coarray, EventVar)):
                return obj
        if isinstance(expr, A.Index) and isinstance(expr.base, A.Var) \
                and env.has(expr.base.name):
            obj = env.lookup(expr.base.name)
            if isinstance(obj, Coarray) and expr.image is not None:
                rank = int((yield from self.eval(img, env, expr.image)))
                rank = _team_rank_to_world(img, rank)
                index = yield from self.eval_selector(
                    img, env, expr.selector, obj.local_at(img.rank))
                return CoarrayRef(obj, rank, index)
            if isinstance(obj, EventVar):
                return (yield from self.eval_event(img, env, expr))
        return (yield from self.eval(img, env, expr))

    # -- stores -------------------------------------------------------------- #

    def store(self, img, env: Scope, target, value) -> Generator:
        if isinstance(target, A.Var):
            if not env.has(target.name):
                raise CafError(f"assignment to undeclared name "
                               f"{target.name!r}")
            current = env.lookup(target.name)
            if isinstance(current, Coarray):
                img._rc_access(CoarrayRef(current, img.rank, slice(None)),
                               write=True)
                current.local_at(img.rank)[:] = value
            elif isinstance(current, CoarrayRef):
                # by-reference spawn argument: writes go through the ref
                if current.world_rank == img.rank:
                    img._rc_access(current, write=True)
                    current.write(value)
                else:
                    yield from img.put(current, value)
            elif isinstance(current, np.ndarray):
                current[:] = value
            else:
                env.set(target.name, _coerce_like(current, value))
            return
        if isinstance(target, A.Index) and isinstance(target.base, A.Var):
            obj = env.lookup(target.base.name)
            if isinstance(obj, Coarray):
                rank = img.rank
                if target.image is not None:
                    rank = int((yield from self.eval(img, env,
                                                     target.image)))
                    rank = _team_rank_to_world(img, rank)
                index = yield from self.eval_selector(
                    img, env, target.selector, obj.local_at(img.rank))
                if rank == img.rank:
                    img._rc_access(CoarrayRef(obj, rank, index), write=True)
                    obj.local_at(rank)[index] = value
                else:
                    yield from img.put(CoarrayRef(obj, rank, index), value)
                return
            if isinstance(obj, np.ndarray):
                if target.image is not None:
                    raise CafError(
                        f"{target.base.name!r} has no co-dimension")
                index = yield from self.eval_selector(
                    img, env, target.selector, obj)
                obj[index] = value
                return
        raise CafError("invalid assignment target")

    # ------------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------------ #

    def eval_call(self, img, env: Scope, call: A.Call,
                  statement: bool = False) -> Generator:
        from repro.lang import builtins as B

        args = []
        for arg in call.args:
            if call.name in B.EVENT_ARG_BUILTINS and args == []:
                args.append((yield from self.eval_event(img, env, arg)))
            else:
                args.append((yield from self.eval(img, env, arg)))

        builtin = B.lookup(call.name)
        if builtin is not None:
            return (yield from builtin(img, *args))

        fn_def = self.program.functions.get(call.name)
        if fn_def is not None:
            if not statement:
                raise CafError(
                    f"user function {call.name!r} may only be invoked "
                    "with `call` or `spawn`")
            # local invocation: evaluate by-reference args like spawn does
            ref_args = []
            for arg in call.args:
                ref_args.append(
                    (yield from self.eval_spawn_arg(img, env, arg)))
            fn = self.make_function(fn_def)
            return (yield from fn(img, *ref_args))
        raise CafError(f"unknown function or subroutine {call.name!r}")


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #

def _iter_decls(stmts):
    for stmt in stmts:
        if isinstance(stmt, A.Decl):
            yield stmt
        elif isinstance(stmt, A.If) and stmt.condition == A.Bool(True) \
                and all(isinstance(s, A.Decl) for s in stmt.then_body):
            yield from stmt.then_body


def _const_int(expr) -> int:
    if isinstance(expr, A.Num) and isinstance(expr.value, int):
        return expr.value
    raise CafError("coarray extents must be integer literals")


def _direction(value: Optional[str]) -> Optional[str]:
    if value is None:
        return None
    if value in ("read", "write", "any"):
        return value
    raise CafError(f"cofence direction must be READ/WRITE/ANY, "
                   f"got {value!r}")


def _team_rank_to_world(img, rank: int) -> int:
    if not 0 <= rank < img.nimages:
        raise CafError(
            f"image index {rank} out of range [0, {img.nimages})")
    return rank


def _check_bounds(i: int, extent: int) -> None:
    if not 1 <= i <= extent:
        raise CafError(
            f"index {i} out of bounds for extent {extent} (arrays are "
            "1-based)")


def _scalarize(value):
    arr = np.asarray(value)
    if arr.ndim == 0:
        return arr[()]
    return arr


def _fortran_divide(a, b):
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        return int(a) // int(b)  # Fortran integer division truncates
    return a / b


def _coerce_like(current, value):
    if isinstance(current, np.integer):
        return np.int64(int(value))
    if isinstance(current, np.floating):
        return np.float64(value)
    if isinstance(current, np.bool_):
        return np.bool_(bool(value))
    return value


def run_program(source: str, n_images: int, params=None, seed: int = 0,
                capture_prints: bool = False):
    """Parse and run a surface program; returns ``(machine, per-image
    results, printed lines)``."""
    return Interpreter(parse(source)).run(
        n_images, params=params, seed=seed, capture_prints=capture_prints)
