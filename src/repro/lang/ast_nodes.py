"""Abstract syntax tree for the CAF 2.0 surface dialect.

All nodes are frozen dataclasses; the interpreter dispatches on type.
``Index`` captures Fortran-style selections ``a(i)``, ``a(lo:hi)`` and
the co-dimension ``a(i)[p]`` that addresses another image's section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# --------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class Num:
    value: Union[int, float]


@dataclass(frozen=True)
class Str:
    value: str


@dataclass(frozen=True)
class Bool:
    value: bool


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Slice:
    """``lo:hi`` inside an index (1-based, inclusive, Fortran-style);
    either bound may be omitted."""
    lo: Optional["Expr"]
    hi: Optional["Expr"]


@dataclass(frozen=True)
class Index:
    """``base(sel)[image]`` — sel and image both optional."""
    base: "Expr"
    selector: Optional[Union["Expr", Slice]]
    image: Optional["Expr"]


@dataclass(frozen=True)
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    op: str
    operand: "Expr"


@dataclass(frozen=True)
class Call:
    name: str
    args: tuple = ()


Expr = Union[Num, Str, Bool, Var, Index, BinOp, UnaryOp, Call]


# --------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class Decl:
    """``integer :: a, b(8), c(4)[*]`` — one entry per declared name."""
    type_name: str           # integer | real | logical | event
    name: str
    shape: Optional[Expr]    # array extent or None for scalars
    codimension: bool        # declared with [*] (coarray / team event)


@dataclass(frozen=True)
class Assign:
    target: Expr             # Var or Index (possibly remote)
    value: Expr


@dataclass(frozen=True)
class CallStmt:
    call: Call


@dataclass(frozen=True)
class If:
    condition: Expr
    then_body: tuple
    else_body: tuple


@dataclass(frozen=True)
class Do:
    var: str
    start: Expr
    stop: Expr
    step: Optional[Expr]
    body: tuple


@dataclass(frozen=True)
class DoWhile:
    condition: Expr
    body: tuple


@dataclass(frozen=True)
class Exit:
    """``exit`` — leave the innermost loop."""


@dataclass(frozen=True)
class Cycle:
    """``cycle`` — next iteration of the innermost loop."""


@dataclass(frozen=True)
class Finish:
    body: tuple
    team: Optional[Expr] = None


@dataclass(frozen=True)
class Cofence:
    downward: Optional[str]
    upward: Optional[str]


@dataclass(frozen=True)
class CopyAsync:
    dest: Expr
    src: Expr
    events: tuple            # up to (pre, src_event, dest_event)


@dataclass(frozen=True)
class Spawn:
    """``spawn name(args) [image]`` with optional completion event:
    ``spawn(e) name(args) [image]``."""
    function: str
    args: tuple
    image: Expr
    event: Optional[Expr]


@dataclass(frozen=True)
class Print:
    values: tuple


@dataclass(frozen=True)
class Return:
    value: Optional[Expr]


Stmt = Union[Decl, Assign, CallStmt, If, Do, DoWhile, Exit, Cycle,
             Finish, Cofence, CopyAsync, Spawn, Print, Return]


# --------------------------------------------------------------------- #
# Program structure
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class FunctionDef:
    name: str
    params: tuple
    body: tuple


@dataclass(frozen=True)
class Program:
    name: str
    body: tuple
    functions: dict = field(default_factory=dict)
