"""Tokenizer for the CAF 2.0 surface dialect.

Line-oriented, Fortran-flavoured: ``!`` starts a comment, keywords are
case-insensitive, statements end at end-of-line (no continuations).
Multi-word statement heads (``end finish``, ``do while``, ...) are left
to the parser; the lexer only produces word/number/string/operator
tokens plus NEWLINE and EOF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = {
    "program", "end", "function", "subroutine", "call", "if", "then",
    "else", "elseif", "do", "while", "finish", "spawn", "cofence",
    "copy_async", "integer", "real", "logical", "event", "lock", "team",
    "print", "return", "and", "or", "not", "true", "false", "exit",
    "cycle",
}

#: multi-character operators, longest first
_OPERATORS = [
    "**", "==", "/=", "<=", ">=", "::", "=", "<", ">", "+", "-", "*",
    "/", "(", ")", "[", "]", ",", ":", "%",
]


class LexError(SyntaxError):
    """Bad character or malformed literal."""


@dataclass(frozen=True)
class Token:
    kind: str      # KEYWORD, NAME, INT, FLOAT, STRING, OP, NEWLINE, EOF
    value: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, L{self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenize a whole program; raises :class:`LexError` with line
    information on bad input."""
    tokens: list[Token] = []
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("!", 1)[0]
        tokens.extend(_tokenize_line(line, line_no))
        if tokens and tokens[-1].kind != "NEWLINE":
            tokens.append(Token("NEWLINE", "\n", line_no, len(line)))
    tokens.append(Token("EOF", "", len(source.splitlines()) + 1, 0))
    return tokens


def _tokenize_line(line: str, line_no: int) -> Iterator[Token]:
    i = 0
    n = len(line)
    any_token = False
    while i < n:
        ch = line[i]
        if ch in " \t\r":
            i += 1
            continue
        col = i
        if ch == '"' or ch == "'":
            end = line.find(ch, i + 1)
            if end < 0:
                raise LexError(
                    f"line {line_no}: unterminated string literal")
            yield Token("STRING", line[i + 1:end], line_no, col)
            i = end + 1
            any_token = True
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and line[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = line[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # guard against `1..2` and range colons like `1.and`
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j + 1 < n and (
                        line[j + 1].isdigit() or line[j + 1] in "+-"):
                    seen_exp = True
                    j += 2 if line[j + 1] in "+-" else 1
                else:
                    break
            text = line[i:j]
            kind = "FLOAT" if ("." in text or "e" in text or "E" in text) \
                else "INT"
            yield Token(kind, text, line_no, col)
            i = j
            any_token = True
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (line[j].isalnum() or line[j] == "_"):
                j += 1
            word = line[i:j]
            lowered = word.lower()
            kind = "KEYWORD" if lowered in KEYWORDS else "NAME"
            yield Token(kind, lowered if kind == "KEYWORD" else word,
                        line_no, col)
            i = j
            any_token = True
            continue
        for op in _OPERATORS:
            if line.startswith(op, i):
                yield Token("OP", op, line_no, col)
                i += len(op)
                any_token = True
                break
        else:
            raise LexError(
                f"line {line_no}, column {col + 1}: "
                f"unexpected character {ch!r}")
    if any_token:
        yield Token("NEWLINE", "\n", line_no, n)
