"""Non-blocking one-sided put/get with explicit and implicit handles.

This mirrors the slice of GASNet the CAF 2.0 runtime is built on:

- registered *segments*: named numpy arrays, one instance per image, that
  remote images may read and write by (image, segment, index);
- ``put_nb`` / ``get_nb``: non-blocking operations returning an explicit
  :class:`OpHandle`;
- ``put_nbi`` / ``get_nbi``: implicit-handle operations tracked per image
  and completed in bulk by ``wait_syncnbi_all``;
- *access regions*: ``begin_accessregion`` / ``end_accessregion`` scoop all
  implicit operations started in between into one aggregate handle (the
  GASNet feature the paper contrasts ``finish`` against — regions cannot
  nest, which we enforce).

Completion points exposed per operation:

- ``local_data`` — for a put, the source buffer has been read (injection
  complete); for a get, the destination buffer has been written (reply
  delivered).
- ``done`` — the operation is complete at both ends (put: remote write
  performed and acknowledged; get: same as ``local_data``).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.sim.tasks import Future, all_of
from repro.net.active_messages import AMCategory, AMLayer, HandlerContext


class AccessRegionError(RuntimeError):
    """Misuse of implicit-handle access regions (e.g. nesting)."""


class Segment:
    """A named, remotely-accessible array with one instance per image.

    When ``members`` is given, storage exists only on those images (this
    is how coarrays allocated over a sub-team are represented); accessing
    the segment on a non-member image is an error.
    """

    def __init__(self, name: str, n_images: int, shape: Any,
                 dtype: Any = np.float64, fill: Any = 0,
                 members: Any = None):
        self.name = name
        self.n_images = n_images
        if members is None:
            # World-spanning segment: membership is the range itself —
            # O(1) memory and O(1) containment, never a p-wide set.
            member_set = range(n_images)
        else:
            member_set = set(members)
            if not all(0 <= m < n_images for m in member_set):
                raise ValueError("segment members out of image range")
        self.members = member_set
        self.locals: list[Optional[np.ndarray]] = [
            np.full(shape, fill, dtype=dtype) if i in member_set else None
            for i in range(n_images)
        ]

    def local(self, image: int) -> np.ndarray:
        arr = self.locals[image]
        if arr is None:
            raise ValueError(
                f"segment {self.name!r} is not allocated on image {image}"
            )
        return arr

    def nbytes_of(self, index: Any) -> int:
        """Simulated size of the selected elements, in bytes."""
        sample = next(a for a in self.locals if a is not None)
        view = sample[index]
        return int(np.asarray(view).nbytes)


class OpHandle:
    """Explicit handle for one non-blocking operation."""

    __slots__ = ("op", "local_data", "done", "value")

    def __init__(self, op: str, tag: str):
        self.op = op
        self.local_data = Future(f"{tag}.local_data")
        self.done = Future(f"{tag}.done")
        #: for gets, the fetched data (valid once ``done`` resolves)
        self.value: Any = None


class Gasnet:
    """The one-sided API, bound to an AM layer."""

    _GET_REQ = "gasnet.get_req"
    _GET_REPLY = "gasnet.get_reply"
    _PUT_PAYLOAD = "gasnet.put"

    def __init__(self, am: AMLayer):
        self.am = am
        self.sim = am.sim
        self._segments: dict[str, Segment] = {}
        # Sparse per-image state: entries exist only for images that
        # actually use implicit handles / access regions, so a machine
        # sized for 8192+ images pays nothing up front (DESIGN.md §13).
        self._implicit: dict[int, list[OpHandle]] = {}
        self._region_open: set[int] = set()
        self._pending_replies: dict[int, OpHandle] = {}
        self._reply_seq = 0
        am.ensure_registered(self._GET_REQ, self._h_get_request)
        am.ensure_registered(self._GET_REPLY, self._h_get_reply)
        am.ensure_registered(self._PUT_PAYLOAD, self._h_put)

    # ------------------------------------------------------------------ #
    # Segments
    # ------------------------------------------------------------------ #

    def register_segment(self, segment: Segment) -> Segment:
        if segment.name in self._segments:
            raise ValueError(f"segment {segment.name!r} already registered")
        if segment.n_images != self.am.params.n_images:
            raise ValueError(
                f"segment spans {segment.n_images} images but the machine "
                f"has {self.am.params.n_images}"
            )
        self._segments[segment.name] = segment
        return segment

    def segment(self, name: str) -> Segment:
        try:
            return self._segments[name]
        except KeyError:
            raise KeyError(f"no segment named {name!r}") from None

    # ------------------------------------------------------------------ #
    # Explicit-handle operations
    # ------------------------------------------------------------------ #

    def put_nb(self, src_image: int, dst_image: int, seg_name: str,
               index: Any, data: Any) -> OpHandle:
        """Write ``data`` into ``segment[index]`` on ``dst_image``."""
        seg = self.segment(seg_name)
        data = np.asarray(data)
        handle = OpHandle("put", f"put@{src_image}->{dst_image}/{seg_name}")

        receipt = self.am.request_nb(
            src_image, dst_image, self._PUT_PAYLOAD,
            args=(seg_name, index),
            payload=data, payload_size=int(data.nbytes),
            category=AMCategory.LONG, want_ack=True, kind="gasnet.put",
        )
        receipt.injected.add_done_callback(
            lambda _f: handle.local_data.set_result(None))
        receipt.delivered.add_done_callback(
            lambda _f: handle.done.set_result(None))
        return handle

    def get_nb(self, src_image: int, dst_image: int, seg_name: str,
               index: Any) -> OpHandle:
        """Fetch ``segment[index]`` from ``dst_image``."""
        seg = self.segment(seg_name)
        handle = OpHandle("get", f"get@{src_image}<-{dst_image}/{seg_name}")
        self._reply_seq += 1
        token = self._reply_seq
        self._pending_replies[token] = handle
        self.am.request_nb(
            src_image, dst_image, self._GET_REQ,
            args=(seg_name, index, token),
            category=AMCategory.SHORT, kind="gasnet.get_req",
        )
        return handle

    # ------------------------------------------------------------------ #
    # Implicit-handle operations and access regions
    # ------------------------------------------------------------------ #

    def put_nbi(self, src_image: int, dst_image: int, seg_name: str,
                index: Any, data: Any) -> OpHandle:
        handle = self.put_nb(src_image, dst_image, seg_name, index, data)
        self._implicit.setdefault(src_image, []).append(handle)
        return handle

    def get_nbi(self, src_image: int, dst_image: int, seg_name: str,
                index: Any) -> OpHandle:
        handle = self.get_nb(src_image, dst_image, seg_name, index)
        self._implicit.setdefault(src_image, []).append(handle)
        return handle

    def wait_syncnbi_all(self, image: int) -> Generator[Any, Any, None]:
        """Block until every implicit-handle op started by ``image`` is
        globally done (GASNet semantics: completion only, no direction
        control — the contrast with ``cofence``)."""
        handles = self._implicit.pop(image, [])
        if handles:
            yield all_of([h.done for h in handles], "syncnbi_all")

    def begin_accessregion(self, image: int) -> None:
        if image in self._region_open:
            raise AccessRegionError(
                "GASNet access regions cannot be nested (paper §III-A.1)"
            )
        if self._implicit.get(image):
            raise AccessRegionError(
                "implicit operations pending outside an access region"
            )
        self._region_open.add(image)

    def end_accessregion(self, image: int) -> Future:
        if image not in self._region_open:
            raise AccessRegionError("no access region open")
        self._region_open.discard(image)
        handles = self._implicit.pop(image, [])
        return all_of([h.done for h in handles], "accessregion")

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #

    def _h_put(self, ctx: HandlerContext, seg_name: str, index: Any) -> None:
        seg = self.segment(seg_name)
        seg.local(ctx.image)[index] = ctx.payload

    def _h_get_request(self, ctx: HandlerContext, seg_name: str,
                       index: Any, token: int) -> None:
        seg = self.segment(seg_name)
        data = np.copy(seg.local(ctx.image)[index])
        ctx.reply(
            self._GET_REPLY, args=(token,),
            payload=data, payload_size=int(np.asarray(data).nbytes),
            category=AMCategory.LONG,
        )

    def _h_get_reply(self, ctx: HandlerContext, token: int) -> None:
        handle = self._pending_replies.pop(token)
        handle.value = ctx.payload
        handle.local_data.set_result(ctx.payload)
        handle.done.set_result(ctx.payload)
