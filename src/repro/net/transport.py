"""Message transport: NIC injection, wire latency, delivery, acks.

Cost model per message (see :class:`repro.net.topology.MachineParams`):

1. *Injection*: the sender's NIC is a serial resource.  A message starts
   injecting when the NIC frees up and occupies it for
   ``o_send + size / bandwidth``.  When injection ends, the **source buffer
   has been read** — this is the transport-level "local data completion"
   event the `cofence` construct builds on.
2. *Wire*: the message then spends ``topology.latency(src, dst)`` on the
   wire (optionally jittered, which can reorder messages between a pair —
   the termination detector must tolerate this).
3. *Delivery*: at arrival the receiver is charged ``o_recv`` and the
   message's ``on_deliver`` callback runs.
4. *Ack* (optional): a NIC-level acknowledgment arrives back at the sender
   ``ack_latency_factor * latency`` later — the transport-level "local
   operation completion" event.

Fault injection and reliability
-------------------------------
A :class:`~repro.net.faults.FaultPlan` turns the perfect interconnect
hostile: transmissions drop, duplicate, stall at the NIC, and reorder
beyond the baseline jitter.  With ``MachineParams.reliable`` the network
runs a reliable-delivery protocol above the faulty wire:

- every data transmission carries a per-``(src, dst)`` link sequence
  number;
- the receiver suppresses duplicates (``on_deliver`` and AM handlers run
  **exactly once** per message) and acknowledges every copy, so a lost
  ack is healed by the retransmission it provokes;
- the sender retransmits unacknowledged messages on an exponentially
  backed-off timer (``rto_safety`` × the message's nominal round trip,
  doubled by ``rto_backoff`` per attempt) and gives up with
  :class:`RetryExhaustedError` after ``retry_cap`` retries.

``DeliveryReceipt.delivered`` then means "the protocol-level ack for a
delivered copy reached the sender" — with a clean network this is the
same instant as the NIC-level ack of the unreliable model, so enabling
reliability does not move any completion time until faults actually
strike.  Retransmits, drops and duplicates are counted in ``Stats``
(``net.retransmits`` / ``net.drops`` / ``net.dups`` / ...) and surfaced
in the chrome trace as instant events.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from repro.sim.engine import ChoicePoint
from repro.sim.tasks import Future

if TYPE_CHECKING:
    from repro.backend.substrate import Substrate
from repro.sim.trace import Stats
from repro.net.topology import MachineParams
from repro.net.faults import FaultPlan

#: Parents of the fallback random streams used when a :class:`Network`
#: is built with ``seed=None``.  Each seedless instance spawns its own
#: child, so two seedless networks in one process draw *different*
#: jitter/fault sequences (they used to share one fixed-seed stream).
_FALLBACK_JITTER_SS = np.random.SeedSequence(0xC0FFEE)
_FALLBACK_FAULT_SS = np.random.SeedSequence(0xFA117)


class RetryExhaustedError(RuntimeError):
    """The reliable transport gave up on a message: every transmission
    (original plus ``retry_cap`` retries) was lost.

    Attributes
    ----------
    link:
        The directed link ``(src, dst)`` that gave up.
    lseq:
        The message's per-link sequence number.
    attempts:
        Retransmissions performed before giving up (== ``retry_cap``).
    link_stats:
        Snapshot of per-link retransmit counts at failure time,
        ``{(src, dst): count}`` — the surrounding context for "was this
        link uniquely bad or is the whole fabric lossy?".
    """

    def __init__(self, message: str, link: tuple = (), lseq: int = -1,
                 attempts: int = 0,
                 link_stats: Optional[dict] = None):
        super().__init__(message)
        self.link = link
        self.lseq = lseq
        self.attempts = attempts
        self.link_stats = dict(link_stats or {})


class PeerFailedError(RuntimeError):
    """A send (or a pending retransmission) was abandoned because the
    destination image is crashed or suspected dead.  Carries the peer's
    rank so callers can reconcile instead of blind-retrying."""

    def __init__(self, message: str, peer: int = -1, suspected: bool = False):
        super().__init__(message)
        self.peer = peer
        #: True when abandoned on suspicion (failure detector), False
        #: when the transport observed the link down (confirmed crash).
        self.suspected = suspected


class Message:
    """One message in flight.  ``payload`` is arbitrary Python data whose
    simulated footprint is ``size`` bytes (we model cost, not encoding).

    ``seq`` is assigned by the :class:`Network` that sends the message —
    a per-network counter, so back-to-back simulations in one process
    number (and tie-break) their messages identically."""

    __slots__ = ("seq", "src", "dst", "size", "payload", "kind", "on_deliver")

    def __init__(self, src: int, dst: int, size: int, payload: Any,
                 kind: str = "msg",
                 on_deliver: Optional[Callable[["Message"], None]] = None):
        if size < 0:
            raise ValueError(f"negative message size {size}")
        self.seq: Optional[int] = None
        self.src = src
        self.dst = dst
        self.size = size
        self.payload = payload
        self.kind = kind
        self.on_deliver = on_deliver

    def __repr__(self) -> str:
        seq = "?" if self.seq is None else self.seq
        return (f"<Message #{seq} {self.kind} {self.src}->{self.dst} "
                f"{self.size}B>")


class DeliveryReceipt:
    """Handles returned by :meth:`Network.send`.

    Attributes
    ----------
    injected:
        Resolves when the sender NIC has finished reading the source
        buffer (transport local-data completion).
    delivered:
        Resolves (at the sender, after the ack round trip) when the
        message's deliver callback has run at the destination.  Only
        tracked when the send requested an ack.
    """

    __slots__ = ("message", "injected", "delivered")

    def __init__(self, message: Message, want_ack: bool):
        self.message = message
        self.injected = Future(f"msg{message.seq}.injected")
        self.delivered = Future(f"msg{message.seq}.delivered") if want_ack else None


class _PendingSend:
    """Sender-side state of one reliably-sent message."""

    __slots__ = ("msg", "receipt", "link", "lseq", "attempt", "acked",
                 "timer", "scripted_drop", "rto0")

    def __init__(self, msg: Message, receipt: DeliveryReceipt,
                 link: tuple, lseq: int, scripted_drop: bool, rto0: float):
        self.msg = msg
        self.receipt = receipt
        self.link = link
        self.lseq = lseq
        self.attempt = 0          # retransmissions performed so far
        self.acked = False
        self.timer = None
        self.scripted_drop = scripted_drop  # consume on first transmission
        self.rto0 = rto0


class _RxState:
    """Receiver-side duplicate suppression for one directed link: all
    link seqs below ``upto`` were delivered; ``seen`` holds the
    out-of-order ones above it."""

    __slots__ = ("upto", "seen")

    def __init__(self) -> None:
        self.upto = 0
        self.seen: set[int] = set()

    def record(self, lseq: int) -> bool:
        """Mark ``lseq`` delivered; True if it was already seen."""
        if lseq < self.upto or lseq in self.seen:
            return True
        self.seen.add(lseq)
        while self.upto in self.seen:
            self.seen.discard(self.upto)
            self.upto += 1
        return False


class Network:
    """The interconnect: owns per-image NIC state and delivers messages.

    Parameters
    ----------
    sim:
        The execution :class:`~repro.backend.substrate.Substrate` the
        cost model schedules against — the deterministic simulator in
        practice (the process backend substitutes
        :class:`~repro.backend.transport.ProcessTransport` for this
        whole class rather than running the simulated wire on real
        time).
    faults:
        Optional :class:`FaultPlan` consulted on every transmission and
        acknowledgment.
    seed:
        Fallback seed for internally-created random streams (jitter,
        unbound fault plans); a machine passes its master seed so every
        stream varies with ``seed=`` as documented.
    """

    def __init__(self, sim: "Substrate", params: MachineParams,
                 stats: Optional[Stats] = None,
                 jitter_rng: Optional[np.random.Generator] = None,
                 tracer=None,
                 faults: Optional[FaultPlan] = None,
                 seed: Optional[int] = None):
        self.sim = sim
        self.params = params
        self.stats = stats if stats is not None else Stats()
        self.tracer = tracer
        self._nic_free_at = np.zeros(params.n_images, dtype=np.float64)
        if params.jitter > 0.0 and jitter_rng is None:
            jitter_rng = np.random.default_rng(
                _FALLBACK_JITTER_SS.spawn(1)[0] if seed is None
                else np.random.SeedSequence(seed))
        self._jitter_rng = jitter_rng
        self.faults = faults
        if faults is not None and faults.seed is None and faults._rng is None:
            faults.bind(np.random.default_rng(
                _FALLBACK_FAULT_SS.spawn(1)[0] if seed is None
                else np.random.SeedSequence(seed)))
        #: per-network message sequence (reproducible across back-to-back
        #: simulations in one process)
        self._msg_seq = itertools.count()
        # reliable-protocol state
        self._tx_next: dict[tuple, int] = {}
        self._tx_pending: dict[tuple, _PendingSend] = {}
        self._rx_states: dict[tuple, _RxState] = {}
        #: open delivery batches keyed by ``(src, dst, delivery_time)`` —
        #: back-to-back arrivals landing at the same instant on a link
        #: share one simulator event (see _schedule_delivery)
        self._arrivals: dict[tuple, list] = {}
        #: short human-readable records of lost transmissions (bounded;
        #: the liveness watchdog quotes these in its diagnostic)
        self.lost: list[str] = []
        #: per-directed-link retransmission counts (RetryExhaustedError
        #: snapshots these; also a chaos diagnostic)
        self.link_retransmits: dict[tuple, int] = {}
        #: confirmed-crashed images: their inbound and outbound links are
        #: down — in-flight deliveries to/from them are discarded and
        #: pending retransmissions fail with :class:`PeerFailedError`
        self._dead: set[int] = set()
        #: suspected-dead images (shared with the failure detector;
        #: includes every confirmed image, so the send fast path needs
        #: only this one membership check).  Sends to a *merely*
        #: suspected peer park in the quarantine; sends to a confirmed
        #: one fail fast.
        self.suspects: set[int] = set()
        #: confirmed-dead images per the failure detector (always a
        #: subset of ``suspects``).  Unlike ``_dead`` — physical crash,
        #: links down — confirmation is a detector *verdict* and can be
        #: wrong; a delivery from a confirmed peer resurrects it.
        self.confirmed: set[int] = set()
        #: quarantined traffic per suspected destination: FIFO of
        #: ``("send", msg, receipt, best_effort)`` fresh sends and
        #: ``("pend", pend)`` parked retransmissions, flushed in order on
        #: unsuspect, failed with PeerFailedError on confirmation
        self._quarantine: dict[int, list] = {}
        #: per-destination quarantine bound; the newest send overflows
        #: with PeerFailedError(suspected=True)
        self.quarantine_cap = 256
        #: liveness piggyback hook: called as ``fn(src, dst)`` whenever a
        #: delivery batch from ``src`` lands at ``dst`` — any delivered
        #: traffic doubles as a heartbeat for the failure detector
        self.on_delivery: Optional[Callable[[int, int], None]] = None
        #: crash trigger hook: called as ``fn(image)`` (via call_soon, so
        #: the triggering send completes first) when the fault plan's
        #: ``crash_after_n_sends`` threshold is reached
        self.on_crash: Optional[Callable[[int], None]] = None
        #: schedule-exploration hook (DESIGN.md §10): an object with
        #: ``choose(ChoicePoint) -> int`` plus ``lag_steps``/``lag_slack``
        #: attributes.  When installed, every remote transmission's extra
        #: delivery lag becomes an explicit recorded choice (and the
        #: jitter rng is bypassed); None = baseline timing, untouched.
        self.schedule_source = None

    # ------------------------------------------------------------------ #

    def send(self, msg: Message, want_ack: bool = False,
             best_effort: bool = False) -> DeliveryReceipt:
        """Enqueue ``msg`` for injection at its source NIC.

        Non-blocking: backpressure, if any, is the flow-control layer's
        job.  Returns a :class:`DeliveryReceipt`.

        ``best_effort`` bypasses the reliable protocol even when
        ``MachineParams.reliable`` is set: no link seq, no retransmit
        timer, no dedup state — the message is fire-and-forget (failure
        detector heartbeats use this; a reliable heartbeat to a dead
        peer would retransmit forever).
        """
        msg.seq = next(self._msg_seq)
        receipt = DeliveryReceipt(msg, want_ack)

        if msg.src != msg.dst and (msg.dst in self._dead
                                   or msg.dst in self.suspects):
            self.stats.incr("net.msgs")
            if msg.dst in self._dead or msg.dst in self.confirmed:
                # Fail fast: the destination is crashed (or the detector
                # confirmed it dead).  The receipt surfaces a typed
                # error instead of the protocol spinning to the retry
                # cap against a downed link.
                self._fail_fresh_send(msg, receipt)
            elif best_effort:
                # Fire-and-forget traffic (heartbeats) transmits even
                # toward a suspect: these are exactly the probes that can
                # prove the suspicion wrong.  Parking them would make a
                # mutual suspicion (a healed partition) permanent — no
                # probe could ever cross, so no side could ever unsuspect
                # the other.
                self._send_now(msg, receipt, best_effort)
            else:
                # Merely suspected: the verdict may be wrong (straggler,
                # partition), so park instead of failing — quarantined
                # traffic flushes on unsuspect, fails on confirmation.
                self._park(msg, receipt, best_effort)
            return receipt

        self.stats.incr("net.msgs")
        self._send_now(msg, receipt, best_effort)
        return receipt

    def _fail_fresh_send(self, msg: Message, receipt: DeliveryReceipt) -> None:
        self.stats.incr("net.peer_failed")
        if receipt.delivered is not None:
            receipt.delivered.set_exception(PeerFailedError(
                f"send of {msg!r} abandoned: image {msg.dst} is "
                + ("confirmed dead" if msg.dst not in self._dead
                   else "crashed"),
                peer=msg.dst, suspected=msg.dst not in self._dead))
        self.sim.call_soon(receipt.injected.set_result, None)

    def _park(self, msg: Message, receipt: DeliveryReceipt,
              best_effort: bool) -> None:
        queue = self._quarantine.setdefault(msg.dst, [])
        if len(queue) >= self.quarantine_cap:
            # Bounded: the newest send overflows with a typed failure
            # rather than the queue growing without limit while the
            # detector makes up its mind.
            self.stats.incr("net.quarantine_overflow")
            self.stats.incr("net.peer_failed")
            if receipt.delivered is not None:
                receipt.delivered.set_exception(PeerFailedError(
                    f"send of {msg!r} abandoned: quarantine for suspected "
                    f"image {msg.dst} is full ({self.quarantine_cap})",
                    peer=msg.dst, suspected=True))
            self.sim.call_soon(receipt.injected.set_result, None)
            return
        self.stats.incr("net.quarantined")
        queue.append(("send", msg, receipt, best_effort))

    def _send_now(self, msg: Message, receipt: DeliveryReceipt,
                  best_effort: bool) -> None:
        """Inject and transmit one fresh send (``net.msgs`` already
        counted by the caller — sends count once even when they sat in
        quarantine first)."""
        inject_end = self._inject(msg)

        self.stats.incr("net.bytes", msg.size)
        self.stats.incr(f"net.kind.{msg.kind}")

        self.sim.schedule_at(inject_end, receipt.injected.set_result, None)

        f = self.faults
        scripted = (f.take_scripted_drop(msg.kind) if f is not None else False)
        if f is not None and f.count_send(msg.src) and self.on_crash is not None:
            # The send that crosses the crash_after_n_sends threshold is
            # the image's last act: it completes, then the crash fires.
            self.sim.call_soon(self.on_crash, msg.src)
        if self.params.reliable and not best_effort:
            link = (msg.src, msg.dst)
            lseq = self._tx_next.get(link, 0)
            self._tx_next[link] = lseq + 1
            pend = _PendingSend(msg, receipt, link, lseq, scripted,
                                self._nominal_rto(msg))
            self._tx_pending[(link, lseq)] = pend
            self._transmit_reliable(pend, inject_end)
        else:
            self._transmit_unreliable(msg, receipt, inject_end, scripted)

    # ------------------------------------------------------------------ #
    # Shared wire mechanics
    # ------------------------------------------------------------------ #

    def _inject(self, msg: Message) -> float:
        """Occupy the source NIC for one transmission; returns the time
        injection ends (source buffer fully read)."""
        p = self.params
        start = max(self.sim.now, float(self._nic_free_at[msg.src]))
        cost = p.o_send + p.transfer_time(msg.size)
        if self.faults is not None:
            released = self.faults.release_time(msg.src, start)
            if released > start:
                self.stats.incr("net.nic_stalls")
                start = released
            if self.faults.stragglers:
                # A straggling image's NIC serves slower: its heartbeats
                # and data sends alike stretch by the service factor.
                cost *= self.faults.service_factor(msg.src, start)
        inject_end = start + cost
        self._nic_free_at[msg.src] = inject_end
        return inject_end

    def _wire_latency(self, msg: Message) -> float:
        lat = self.params.topology.latency(msg.src, msg.dst)
        source = self.schedule_source
        if source is not None:
            # Controlled mode: the wire's nondeterminism is an explicit
            # choice among discrete lag steps instead of a jitter draw.
            # Step 0 is the nominal latency (baseline), step k adds
            # ``lag_slack * k / (steps - 1)`` of the latency on top —
            # enough spread to reorder back-to-back messages on a link.
            if msg.src == msg.dst:
                return lat  # loopback models memory, never reorders
            steps = source.lag_steps
            if steps <= 1:
                return lat
            # Every non-loopback lag is branchable: the latency choice
            # is made at send time, before any later message that could
            # overtake this one even exists, so "nothing else in flight"
            # proves nothing about commutativity.
            point = ChoicePoint(
                "lag", steps,
                key=f"{msg.kind}:{msg.src}->{msg.dst}")
            k = source.choose(point)
            if not 0 <= k < steps:
                raise ValueError(
                    f"schedule source chose lag step {k} of {steps}")
            return lat * (1.0 + source.lag_slack * k / (steps - 1))
        if self.params.jitter > 0.0:
            lat *= 1.0 + self.params.jitter * float(
                self._jitter_rng.uniform(-1.0, 1.0))
        return lat

    def _schedule_delivery(self, src: int, dst: int, t: float,
                           fn: Callable, *args: Any) -> None:
        """Schedule a receiver-side delivery callback at time ``t``,
        coalescing with any delivery already due at the same instant on
        the same directed link.  With a serial NIC and ``o_send > 0``
        same-instant arrivals essentially never happen, but zero-overhead
        configurations produce long trains of them; one shared event then
        replaces N heap entries.  Batch order is scheduling order, which
        is exactly the (time, seq) order separate events would fire in."""
        key = (src, dst, t)
        batch = self._arrivals.get(key)
        if batch is not None:
            batch.append((fn, args))
            self.stats.incr("net.deliveries_coalesced")
            return
        self._arrivals[key] = batch = [(fn, args)]
        self.sim.schedule_at(t, self._run_delivery_batch, key, batch)

    def _run_delivery_batch(self, key: tuple, batch: list) -> None:
        del self._arrivals[key]
        if self._dead and (key[0] in self._dead or key[1] in self._dead):
            # The link went down while these copies were in flight:
            # a dead source's packets are discarded, a dead destination
            # processes nothing.
            self.stats.incr("net.dead_link_discards", len(batch))
            if key[1] in self._dead and key[0] not in self._dead:
                # A live sender's receipts must fail, not dangle: the
                # unreliable path has no retransmit timer that would
                # otherwise notice the downed link.
                for fn, args in batch:
                    self._fail_discarded(fn, args, key[1])
            return
        if self.on_delivery is not None:
            self.on_delivery(key[0], key[1])
        for fn, args in batch:
            fn(*args)

    def _fail_discarded(self, fn: Callable, args: tuple, peer: int) -> None:
        """Surface PeerFailedError for one discarded delivery-batch entry
        whose destination crashed in flight.  Reliable sends are skipped:
        their retransmit timer reaches the same verdict on its own."""
        if fn != self._deliver:
            return
        receipt = args[1]
        if receipt.delivered is not None and not receipt.delivered.done:
            self.stats.incr("net.peer_failed")
            receipt.delivered.set_exception(PeerFailedError(
                f"delivery of {receipt.message!r} discarded: image "
                f"{peer} crashed with the message in flight",
                peer=peer, suspected=False))

    def _record_drop(self, msg: Message, t: float) -> None:
        self.stats.incr("net.drops")
        self.stats.incr(f"net.drops.{msg.kind}")
        if len(self.lost) < 64:
            self.lost.append(
                f"t={t:.6f}s {msg.kind} #{msg.seq} {msg.src}->{msg.dst}")
        if self.tracer is not None:
            self.tracer.instant(msg.src, f"drop {msg.kind}", t,
                                args={"dst": msg.dst, "seq": msg.seq})

    # ------------------------------------------------------------------ #
    # Unreliable path (the original perfect-wire model, plus faults)
    # ------------------------------------------------------------------ #

    def _transmit_unreliable(self, msg: Message, receipt: DeliveryReceipt,
                             inject_end: float, scripted: bool) -> None:
        lat = self._wire_latency(msg)
        f = self.faults
        extra = 0.0
        duplicated = False
        if f is not None and msg.src != msg.dst:
            extra = f.extra_latency(lat)
            if scripted or f.roll_drop(msg.src, msg.dst):
                self._record_drop(msg, inject_end)
                return
            if f.gray and f.link_down(msg.src, msg.dst, inject_end):
                # Partition / flap window: the wire itself is severed.
                # Pure in time — no rng draw, so scripting a partition
                # never shifts the drop/duplicate decision stream.
                self.stats.incr("net.link_down_drops")
                self._record_drop(msg, inject_end)
                return
            duplicated = f.roll_duplicate()
        arrive = inject_end + lat + extra
        if self.tracer is not None:
            self.tracer.flow(msg.kind, msg.src, inject_end, msg.dst,
                             arrive, args={"bytes": msg.size})
        self._schedule_delivery(msg.src, msg.dst, arrive + self.params.o_recv,
                                self._deliver, msg, receipt, lat)
        if duplicated:
            # Without the reliable protocol there is no receiver-side
            # suppression: the handler really runs twice (chaos mode).
            self.stats.incr("net.dups")
            arrive2 = arrive + f.duplicate_lag(lat)
            self._schedule_delivery(msg.src, msg.dst,
                                    arrive2 + self.params.o_recv,
                                    self._deliver, msg, receipt, lat)

    def _deliver(self, msg: Message, receipt: DeliveryReceipt,
                 lat: float) -> None:
        if msg.on_deliver is not None:
            msg.on_deliver(msg)
        if receipt.delivered is not None and not receipt.delivered.done:
            ack_delay = self.params.ack_latency_factor * lat
            self.sim.schedule(ack_delay, self._resolve_delivered, receipt)

    @staticmethod
    def _resolve_delivered(receipt: DeliveryReceipt) -> None:
        if not receipt.delivered.done:
            receipt.delivered.set_result(None)

    # ------------------------------------------------------------------ #
    # Reliable path
    # ------------------------------------------------------------------ #

    def _nominal_rto(self, msg: Message) -> float:
        """First retransmission timeout: ``rto_safety`` × the message's
        nominal (jitter-free) round trip."""
        p = self.params
        lat = p.topology.latency(msg.src, msg.dst)
        rtt = (p.o_send + p.transfer_time(msg.size) + lat + p.o_recv
               + p.ack_latency_factor * lat)
        return p.rto_safety * rtt

    def _transmit_reliable(self, pend: _PendingSend,
                           inject_end: float) -> None:
        msg = pend.msg
        f = self.faults
        lat = self._wire_latency(msg)
        extra = 0.0
        dropped = False
        duplicated = False
        if f is not None and msg.src != msg.dst:
            extra = f.extra_latency(lat)
            if pend.scripted_drop:
                pend.scripted_drop = False
                dropped = True
            else:
                dropped = f.roll_drop(msg.src, msg.dst)
            if not dropped and f.gray and f.link_down(msg.src, msg.dst,
                                                      inject_end):
                self.stats.incr("net.link_down_drops")
                dropped = True
            if not dropped:
                duplicated = f.roll_duplicate()
        if dropped:
            self._record_drop(msg, inject_end)
        else:
            arrive = inject_end + lat + extra
            if self.tracer is not None:
                self.tracer.flow(msg.kind, msg.src, inject_end, msg.dst,
                                 arrive, args={"bytes": msg.size,
                                               "attempt": pend.attempt})
            self._schedule_delivery(msg.src, msg.dst,
                                    arrive + self.params.o_recv,
                                    self._deliver_reliable, pend, lat)
            if duplicated:
                self.stats.incr("net.dups")
                arrive2 = arrive + f.duplicate_lag(lat)
                self._schedule_delivery(msg.src, msg.dst,
                                        arrive2 + self.params.o_recv,
                                        self._deliver_reliable, pend, lat)
        rto = pend.rto0 * (self.params.rto_backoff ** pend.attempt)
        pend.timer = self.sim.schedule_at(inject_end + rto,
                                          self._retransmit, pend)

    def _retransmit(self, pend: _PendingSend) -> None:
        if pend.acked:
            return
        msg = pend.msg
        if msg.src in self._dead:
            # The sender crashed between timer arm and fire: its pending
            # protocol state dies with it.
            self._tx_pending.pop((pend.link, pend.lseq), None)
            return
        if msg.dst in self._dead or msg.dst in self.confirmed:
            # Stop retrying into a downed link and surface a typed
            # failure instead of spinning to the cap.
            self._fail_pending(pend, PeerFailedError(
                f"retransmission of {msg!r} abandoned after "
                f"{pend.attempt} attempts: image {msg.dst} is "
                + ("confirmed dead" if msg.dst not in self._dead
                   else "crashed"),
                peer=msg.dst, suspected=msg.dst not in self._dead))
            return
        if msg.dst in self.suspects:
            # Merely suspected: park the pending message instead of
            # burning retries into a possibly-slow peer.  The timer is
            # not re-armed; unsuspecting re-injects, confirmation fails.
            self.stats.incr("net.quarantined")
            pend.timer = None
            self._quarantine.setdefault(msg.dst, []).append(("pend", pend))
            return
        pend.attempt += 1
        p = self.params
        if pend.attempt > p.retry_cap:
            self._tx_pending.pop((pend.link, pend.lseq), None)
            raise RetryExhaustedError(
                f"reliable transport gave up on {msg!r} after "
                f"{p.retry_cap} retransmissions (link {pend.link}, link "
                f"seq {pend.lseq}, t={self.sim.now:.6f}s): every copy "
                "was lost — raise MachineParams.retry_cap or lower the "
                "FaultPlan drop rate",
                link=pend.link, lseq=pend.lseq, attempts=p.retry_cap,
                link_stats=self.link_retransmits,
            )
        self.stats.incr("net.retransmits")
        self.stats.incr(f"net.retransmits.{pend.msg.kind}")
        self.link_retransmits[pend.link] = (
            self.link_retransmits.get(pend.link, 0) + 1)
        if self.tracer is not None:
            self.tracer.instant(pend.msg.src,
                                f"rexmit {pend.msg.kind}", self.sim.now,
                                args={"dst": pend.msg.dst,
                                      "attempt": pend.attempt})
        inject_end = self._inject(pend.msg)
        self._transmit_reliable(pend, inject_end)

    def _deliver_reliable(self, pend: _PendingSend, lat: float) -> None:
        msg = pend.msg
        rx = self._rx_states.get(pend.link)
        if rx is None:
            rx = self._rx_states[pend.link] = _RxState()
        if rx.record(pend.lseq):
            # Duplicate copy (injected dup or retransmission overlap):
            # suppress the handler but re-ack, healing a lost ack.
            self.stats.incr("net.dups_suppressed")
        elif msg.on_deliver is not None:
            msg.on_deliver(msg)
        f = self.faults
        if (f is not None and msg.src != msg.dst
                and f.roll_ack_drop(msg.dst, msg.src)):
            self.stats.incr("net.ack_drops")
            return
        if (f is not None and msg.src != msg.dst and f.gray
                and f.link_down(msg.dst, msg.src, self.sim.now)):
            # The reverse link is severed: the ack is lost on the wire.
            self.stats.incr("net.link_down_drops")
            self.stats.incr("net.ack_drops")
            return
        ack_delay = self.params.ack_latency_factor * lat
        self.sim.schedule(ack_delay, self._on_ack, pend)

    def _fail_pending(self, pend: _PendingSend, exc: BaseException) -> None:
        """Abandon a reliably-sent message: pop protocol state, stop the
        timer, and surface ``exc`` through the receipt (if anyone is
        watching)."""
        self._tx_pending.pop((pend.link, pend.lseq), None)
        if pend.timer is not None:
            self.sim.cancel(pend.timer)
            pend.timer = None
        self.stats.incr("net.peer_failed")
        if (pend.receipt.delivered is not None
                and not pend.receipt.delivered.done):
            pend.receipt.delivered.set_exception(exc)

    def mark_dead(self, image: int) -> None:
        """Take ``image``'s links down (the network half of a fail-stop
        crash): in-flight deliveries to/from it are discarded when they
        surface, its outbound protocol state is dropped, and future
        sends/retransmissions toward it fail with
        :class:`PeerFailedError`."""
        if image in self._dead:
            return
        self._dead.add(image)
        self.stats.incr("net.images_dead")
        # The dead image's own unacked sends die with it (cancel the
        # timers now; delivery batches already in flight are discarded by
        # _run_delivery_batch).  Sends *to* it are left to fail at their
        # next retransmission timer — the moment the transport would
        # have touched the downed link.
        for key, pend in list(self._tx_pending.items()):
            if pend.msg.src == image:
                if pend.timer is not None:
                    self.sim.cancel(pend.timer)
                    pend.timer = None
                del self._tx_pending[key]
        # Quarantined traffic toward a physically-dead image can never
        # flush; fail it now.
        self._fail_quarantined(image, suspected=False)

    # ------------------------------------------------------------------ #
    # Two-level membership (driven by the failure detector)
    # ------------------------------------------------------------------ #

    def mark_suspect(self, image: int) -> None:
        """Level one: the detector suspects ``image``.  New sends toward
        it park in the quarantine; pending retransmissions park at their
        next timer."""
        self.suspects.add(image)

    def unmark_suspect(self, image: int) -> None:
        """The suspicion was wrong (a heartbeat or any delivery arrived):
        lift it and flush the quarantined traffic in FIFO order."""
        self.suspects.discard(image)
        queue = self._quarantine.pop(image, None)
        if not queue:
            return
        self.stats.incr("net.quarantine_flushed", len(queue))
        for entry in queue:
            if entry[0] == "send":
                _, msg, receipt, best_effort = entry
                self._send_now(msg, receipt, best_effort)
            else:
                pend = entry[1]
                if pend.acked or pend.msg.src in self._dead:
                    continue
                self._transmit_reliable(pend, self._inject(pend.msg))

    def confirm_dead(self, image: int) -> None:
        """Level two: the detector confirms ``image`` dead.  Future
        sends fail fast and every quarantined message fails with
        :class:`PeerFailedError` — the signal the termination layer
        reconciles on."""
        if image in self.confirmed:
            return
        self.suspects.add(image)
        self.confirmed.add(image)
        self._fail_quarantined(image, suspected=True)

    def _fail_quarantined(self, image: int, suspected: bool) -> None:
        queue = self._quarantine.pop(image, None)
        if not queue:
            return
        verdict = "confirmed dead" if suspected else "crashed"
        for entry in queue:
            if entry[0] == "send":
                _, msg, receipt, _ = entry
                self.stats.incr("net.peer_failed")
                if receipt.delivered is not None and not receipt.delivered.done:
                    receipt.delivered.set_exception(PeerFailedError(
                        f"quarantined send of {msg!r} abandoned: image "
                        f"{image} is {verdict}",
                        peer=image, suspected=suspected))
                self.sim.call_soon(receipt.injected.set_result, None)
            else:
                pend = entry[1]
                if pend.acked:
                    continue
                self._fail_pending(pend, PeerFailedError(
                    f"quarantined retransmission of {pend.msg!r} abandoned "
                    f"after {pend.attempt} attempts: image {image} is "
                    f"{verdict}",
                    peer=image, suspected=suspected))

    def _on_ack(self, pend: _PendingSend) -> None:
        if pend.acked:
            return  # a re-ack of a suppressed duplicate
        if pend.msg.dst in self._dead:
            return  # the acking image crashed while the ack was in flight
        pend.acked = True
        self._tx_pending.pop((pend.link, pend.lseq), None)
        if pend.timer is not None:
            self.sim.cancel(pend.timer)
            pend.timer = None
        self.stats.incr("net.acks")
        if pend.receipt.delivered is not None:
            pend.receipt.delivered.set_result(None)

    # ------------------------------------------------------------------ #

    def nic_busy_until(self, image: int) -> float:
        """When the image's NIC injection port next frees (diagnostic)."""
        return float(self._nic_free_at[image])

    def unacked(self) -> list[str]:
        """Human-readable descriptions of reliably-sent messages still
        awaiting acknowledgment (diagnostic)."""
        return [f"{p.msg.kind} #{p.msg.seq} {p.msg.src}->{p.msg.dst} "
                f"(attempt {p.attempt})"
                for p in self._tx_pending.values()]
