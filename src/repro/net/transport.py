"""Message transport: NIC injection, wire latency, delivery, acks.

Cost model per message (see :class:`repro.net.topology.MachineParams`):

1. *Injection*: the sender's NIC is a serial resource.  A message starts
   injecting when the NIC frees up and occupies it for
   ``o_send + size / bandwidth``.  When injection ends, the **source buffer
   has been read** — this is the transport-level "local data completion"
   event the `cofence` construct builds on.
2. *Wire*: the message then spends ``topology.latency(src, dst)`` on the
   wire (optionally jittered, which can reorder messages between a pair —
   the termination detector must tolerate this).
3. *Delivery*: at arrival the receiver is charged ``o_recv`` and the
   message's ``on_deliver`` callback runs.
4. *Ack* (optional): a NIC-level acknowledgment arrives back at the sender
   ``ack_latency_factor * latency`` later — the transport-level "local
   operation completion" event.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.tasks import Future
from repro.sim.trace import Stats
from repro.net.topology import MachineParams


class Message:
    """One message in flight.  ``payload`` is arbitrary Python data whose
    simulated footprint is ``size`` bytes (we model cost, not encoding)."""

    __slots__ = ("seq", "src", "dst", "size", "payload", "kind", "on_deliver")

    _seq = itertools.count()

    def __init__(self, src: int, dst: int, size: int, payload: Any,
                 kind: str = "msg",
                 on_deliver: Optional[Callable[["Message"], None]] = None):
        if size < 0:
            raise ValueError(f"negative message size {size}")
        self.seq = next(Message._seq)
        self.src = src
        self.dst = dst
        self.size = size
        self.payload = payload
        self.kind = kind
        self.on_deliver = on_deliver

    def __repr__(self) -> str:
        return (f"<Message #{self.seq} {self.kind} {self.src}->{self.dst} "
                f"{self.size}B>")


class DeliveryReceipt:
    """Handles returned by :meth:`Network.send`.

    Attributes
    ----------
    injected:
        Resolves when the sender NIC has finished reading the source
        buffer (transport local-data completion).
    delivered:
        Resolves (at the sender, after the ack round trip) when the
        message's deliver callback has run at the destination.  Only
        tracked when the send requested an ack.
    """

    __slots__ = ("message", "injected", "delivered")

    def __init__(self, message: Message, want_ack: bool):
        self.message = message
        self.injected = Future(f"msg{message.seq}.injected")
        self.delivered = Future(f"msg{message.seq}.delivered") if want_ack else None


class Network:
    """The interconnect: owns per-image NIC state and delivers messages."""

    def __init__(self, sim: Simulator, params: MachineParams,
                 stats: Optional[Stats] = None,
                 jitter_rng: Optional[np.random.Generator] = None,
                 tracer=None):
        self.sim = sim
        self.params = params
        self.stats = stats if stats is not None else Stats()
        self.tracer = tracer
        self._nic_free_at = np.zeros(params.n_images, dtype=np.float64)
        if params.jitter > 0.0 and jitter_rng is None:
            jitter_rng = np.random.default_rng(0xC0FFEE)
        self._jitter_rng = jitter_rng

    # ------------------------------------------------------------------ #

    def send(self, msg: Message, want_ack: bool = False) -> DeliveryReceipt:
        """Enqueue ``msg`` for injection at its source NIC.

        Non-blocking: backpressure, if any, is the flow-control layer's
        job.  Returns a :class:`DeliveryReceipt`.
        """
        p = self.params
        receipt = DeliveryReceipt(msg, want_ack)

        start = max(self.sim.now, float(self._nic_free_at[msg.src]))
        inject_end = start + p.o_send + p.transfer_time(msg.size)
        self._nic_free_at[msg.src] = inject_end

        lat = p.topology.latency(msg.src, msg.dst)
        if p.jitter > 0.0:
            lat *= 1.0 + p.jitter * float(self._jitter_rng.uniform(-1.0, 1.0))
        arrive = inject_end + lat
        deliver_done = arrive + p.o_recv

        self.stats.incr("net.msgs")
        self.stats.incr("net.bytes", msg.size)
        self.stats.incr(f"net.kind.{msg.kind}")
        if self.tracer is not None:
            self.tracer.flow(msg.kind, msg.src, inject_end, msg.dst,
                             arrive, args={"bytes": msg.size})

        self.sim.schedule_at(inject_end, receipt.injected.set_result, None)
        self.sim.schedule_at(deliver_done, self._deliver, msg, receipt, lat)
        return receipt

    def _deliver(self, msg: Message, receipt: DeliveryReceipt,
                 lat: float) -> None:
        if msg.on_deliver is not None:
            msg.on_deliver(msg)
        if receipt.delivered is not None:
            ack_delay = self.params.ack_latency_factor * lat
            self.sim.schedule(ack_delay, receipt.delivered.set_result, None)

    # ------------------------------------------------------------------ #

    def nic_busy_until(self, image: int) -> float:
        """When the image's NIC injection port next frees (diagnostic)."""
        return float(self._nic_free_at[image])
