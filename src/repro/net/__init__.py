"""Simulated interconnect: the GASNet-shaped communication substrate.

Layers, bottom to top:

- :mod:`repro.net.topology` — where latency comes from (uniform,
  hierarchical, hypercube-distance models) and the LogGP-flavoured
  machine parameters;
- :mod:`repro.net.transport` — NICs with serialized injection, message
  delivery, optional delivery acknowledgments and jitter;
- :mod:`repro.net.flowcontrol` — credit-based limits on outstanding
  messages (models the GASNet flow control behind the paper's Fig. 14
  anomaly);
- :mod:`repro.net.active_messages` — GASNet-style active messages
  (short/medium/long, with the medium-payload cap that limits UTS steal
  batches to 9 work items in the paper);
- :mod:`repro.net.gasnet` — non-blocking put/get with explicit and
  implicit handles plus access regions.
"""

from repro.net.topology import (
    MachineParams,
    Topology,
    UniformTopology,
    HierarchicalTopology,
    HypercubeTopology,
    TorusTopology,
)
from repro.net.transport import Message, Network, DeliveryReceipt
from repro.net.flowcontrol import CreditManager
from repro.net.active_messages import (
    AMLayer,
    AMCategory,
    AMSizeError,
    HandlerContext,
)
from repro.net.gasnet import Gasnet, Segment, AccessRegionError

__all__ = [
    "MachineParams",
    "Topology",
    "UniformTopology",
    "HierarchicalTopology",
    "HypercubeTopology",
    "TorusTopology",
    "Message",
    "Network",
    "DeliveryReceipt",
    "CreditManager",
    "AMLayer",
    "AMCategory",
    "AMSizeError",
    "HandlerContext",
    "Gasnet",
    "Segment",
    "AccessRegionError",
]
