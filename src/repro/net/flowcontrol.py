"""Credit-based flow control.

GASNet bounds the number of unacknowledged active messages a node may
have outstanding; a sender that exhausts its tokens spins in the poll
loop until acks return, and the longer the backlog the longer each retry
cycle takes.  The paper attributes the Fig. 14 performance anomaly
(RandomAccess getting *slower* with very large ``finish`` bunch sizes)
to exactly this mechanism: bunched finish blocks drain the network
before the backlog deepens, while huge bunches drive the sender into
sustained retry.

Model:

- a token pool per directed pair (``scope="pair"``) or per source NIC
  (``scope="source"``, the GASNet-node-token behaviour — uniform-random
  traffic like RandomAccess only pressures the source pool);
- each blocked acquire counts a *stall*; consecutive stalls form a run
  that ends when an acquire succeeds without blocking (the network
  drained);
- a stall's penalty grows with the run: ``stall_penalty * min(run,
  backoff_limit)`` — the poll loop walking an ever-deeper retry queue.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable

from repro.sim.engine import Simulator
from repro.sim.tasks import Delay, Semaphore
from repro.sim.trace import Stats

_SCOPES = ("pair", "source")


class CreditManager:
    """Outstanding-message credits with run-proportional stall penalty.

    Parameters
    ----------
    credits:
        Tokens per pool (per directed pair or per source, by ``scope``).
    stall_penalty:
        Retry-cycle cost; a stall in a run of length r costs
        ``stall_penalty * min(r, backoff_limit)``.
    backoff_limit:
        Cap on the run multiplier.
    scope:
        ``"pair"`` or ``"source"`` pooling.
    """

    def __init__(self, sim: Simulator, credits: int,
                 stall_penalty: float = 2.0e-6,
                 backoff_limit: int = 64,
                 scope: str = "pair",
                 stats: Stats | None = None):
        if credits <= 0:
            raise ValueError(f"credits must be positive, got {credits}")
        if stall_penalty < 0:
            raise ValueError("stall_penalty must be non-negative")
        if backoff_limit < 1:
            raise ValueError("backoff_limit must be >= 1")
        if scope not in _SCOPES:
            raise ValueError(f"scope must be one of {_SCOPES}")
        self.sim = sim
        self.credits = credits
        self.stall_penalty = stall_penalty
        self.backoff_limit = backoff_limit
        self.scope = scope
        self.stats = stats if stats is not None else Stats()
        self._pools: dict[Hashable, Semaphore] = {}
        self._stall_runs: dict[Hashable, int] = {}

    def _key(self, src: int, dst: int) -> Hashable:
        return (src, dst) if self.scope == "pair" else src

    def _pool(self, src: int, dst: int) -> Semaphore:
        key = self._key(src, dst)
        pool = self._pools.get(key)
        if pool is None:
            pool = Semaphore(self.sim, self.credits, name=f"credits{key}")
            self._pools[key] = pool
        return pool

    def acquire(self, src: int, dst: int) -> Generator[Any, Any, None]:
        """Take one credit for a ``src → dst`` message; blocks (and pays
        the run-scaled stall penalty) when the pool is empty.  Use with
        ``yield from``.

        A stall *run* ends only when the pool has fully drained back to
        capacity (every outstanding message acknowledged) — one freed
        token does not clear the backlog.  Synchronization that drains
        the network (a bunched ``finish``) therefore resets the retry
        cost, while back-to-back saturation pays ever-longer retries.
        """
        key = self._key(src, dst)
        pool = self._pool(src, dst)
        if pool.available == self.credits:
            self._stall_runs[key] = 0
        if pool.try_acquire():
            return
        run = self._stall_runs.get(key, 0) + 1
        self._stall_runs[key] = run
        self.stats.incr("flow.stalls")
        yield from pool.acquire()
        if self.stall_penalty > 0:
            yield Delay(self.stall_penalty * min(run, self.backoff_limit))

    def release(self, src: int, dst: int) -> None:
        """Return one credit (called when the ack arrives)."""
        self._pool(src, dst).release()

    def outstanding(self, src: int, dst: int) -> int:
        """Credits currently in use for the pool (diagnostic)."""
        return self.credits - self._pool(src, dst).available
