"""Network cost models.

The simulator charges a message of ``size`` bytes from ``src`` to ``dst``:

- ``o_send`` seconds of NIC occupancy at the sender, plus ``size / bandwidth``
  of injection serialization (LogGP's *o* and *G*);
- a wire latency ``topology.latency(src, dst)`` (LogGP's *L*, possibly
  distance-dependent);
- ``o_recv`` seconds of handler overhead at the receiver.

Defaults approximate a Gemini-class torus NIC (the Cray XK6/XE6 machines of
the paper): ~1.5 µs one-way latency, ~5 GB/s injection bandwidth, ~0.2 µs
per-message processing overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _validate_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


class Topology:
    """Base class: maps an (src, dst) image pair to a wire latency."""

    def __init__(self, n_images: int):
        if n_images <= 0:
            raise ValueError(f"n_images must be positive, got {n_images}")
        self.n_images = n_images

    def latency(self, src: int, dst: int) -> float:
        raise NotImplementedError

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.n_images and 0 <= dst < self.n_images):
            raise ValueError(
                f"image pair ({src}, {dst}) out of range for "
                f"{self.n_images} images"
            )


class UniformTopology(Topology):
    """Every remote pair has the same latency; loopback is cheaper."""

    def __init__(self, n_images: int, wire_latency: float = 1.5e-6,
                 self_latency: float = 1.0e-7):
        super().__init__(n_images)
        _validate_positive("wire_latency", wire_latency)
        _validate_positive("self_latency", self_latency)
        self.wire_latency = wire_latency
        self.self_latency = self_latency

    def latency(self, src: int, dst: int) -> float:
        self._check(src, dst)
        return self.self_latency if src == dst else self.wire_latency


class HierarchicalTopology(Topology):
    """Images are grouped onto nodes; intra-node messages are cheap.

    Models "8 cores per node" placements the paper uses on Jaguar/Hopper.
    """

    def __init__(self, n_images: int, images_per_node: int = 8,
                 intra_latency: float = 4.0e-7,
                 inter_latency: float = 1.5e-6,
                 self_latency: float = 1.0e-7):
        super().__init__(n_images)
        if images_per_node <= 0:
            raise ValueError("images_per_node must be positive")
        _validate_positive("intra_latency", intra_latency)
        _validate_positive("inter_latency", inter_latency)
        self.images_per_node = images_per_node
        self.intra_latency = intra_latency
        self.inter_latency = inter_latency
        self.self_latency = self_latency

    def node_of(self, image: int) -> int:
        return image // self.images_per_node

    def latency(self, src: int, dst: int) -> float:
        self._check(src, dst)
        if src == dst:
            return self.self_latency
        if self.node_of(src) == self.node_of(dst):
            return self.intra_latency
        return self.inter_latency


class TorusTopology(Topology):
    """A k-dimensional torus with dimension-order routing: latency grows
    with the total hop count along each dimension's shorter way around.

    Models the Gemini 3-D torus of the paper's Cray XK6/XE6 testbeds.
    Images are folded into the torus in row-major order; extra image
    slots beyond the grid volume are rejected.
    """

    def __init__(self, n_images: int, dims: tuple,
                 base_latency: float = 8.0e-7,
                 per_hop: float = 1.0e-7,
                 self_latency: float = 1.0e-7):
        super().__init__(n_images)
        dims = tuple(int(d) for d in dims)
        if not dims or any(d <= 0 for d in dims):
            raise ValueError(f"bad torus dims {dims}")
        volume = math.prod(dims)
        if n_images > volume:
            raise ValueError(
                f"{n_images} images exceed torus volume {volume} "
                f"for dims {dims}"
            )
        _validate_positive("base_latency", base_latency)
        _validate_positive("per_hop", per_hop)
        self.dims = dims
        self.base_latency = base_latency
        self.per_hop = per_hop
        self.self_latency = self_latency

    def coordinates(self, image: int) -> tuple:
        """Row-major torus coordinates of an image."""
        out = []
        for extent in reversed(self.dims):
            out.append(image % extent)
            image //= extent
        return tuple(reversed(out))

    def hops(self, src: int, dst: int) -> int:
        """Dimension-order hop count, taking the shorter way around each
        ring."""
        total = 0
        for a, b, extent in zip(self.coordinates(src),
                                self.coordinates(dst), self.dims):
            delta = abs(a - b)
            total += min(delta, extent - delta)
        return total

    def latency(self, src: int, dst: int) -> float:
        self._check(src, dst)
        if src == dst:
            return self.self_latency
        return self.base_latency + self.per_hop * self.hops(src, dst)


class HypercubeTopology(Topology):
    """Latency grows with Hamming distance between image ids.

    A stylized stand-in for multi-hop torus routing: each hop adds
    ``per_hop`` on top of a base latency.
    """

    def __init__(self, n_images: int, base_latency: float = 1.0e-6,
                 per_hop: float = 2.0e-7, self_latency: float = 1.0e-7):
        super().__init__(n_images)
        _validate_positive("base_latency", base_latency)
        _validate_positive("per_hop", per_hop)
        self.base_latency = base_latency
        self.per_hop = per_hop
        self.self_latency = self_latency

    @staticmethod
    def hops(src: int, dst: int) -> int:
        return (src ^ dst).bit_count()

    def latency(self, src: int, dst: int) -> float:
        self._check(src, dst)
        if src == dst:
            return self.self_latency
        return self.base_latency + self.per_hop * self.hops(src, dst)


@dataclass
class MachineParams:
    """LogGP-flavoured machine description shared by the whole stack.

    Attributes
    ----------
    topology:
        Pairwise wire-latency model.
    bandwidth:
        NIC injection bandwidth, bytes/second.
    o_send, o_recv:
        Fixed per-message CPU/NIC overhead at sender / receiver, seconds.
    am_medium_max:
        Maximum medium active-message payload, bytes.  The default (256)
        admits a shipped function carrying exactly 9 packed UTS work
        items (20-byte digest + depth word each, after the spawn header),
        matching the paper's observation that GASNet's medium packet
        size caps a steal at 9 items.
    ack_latency_factor:
        Delivery acknowledgments travel at ``factor * wire latency`` and
        occupy no injection bandwidth (they model NIC-level acks).
    jitter:
        Fractional uniform jitter applied to wire latency (0 disables).
        Nonzero jitter can reorder messages between a pair of images,
        which exercises the no-FIFO-assumption property of the paper's
        termination-detection algorithm.
    flow_credits:
        Outstanding-message credits; ``None`` disables flow control.
        Models GASNet's token-based flow control.
    flow_credit_scope:
        ``"pair"`` pools credits per directed (src, dst) pair;
        ``"source"`` pools them per sending NIC (GASNet node tokens —
        the configuration behind the Fig. 14 bunch-size anomaly).
    flow_stall_penalty:
        Retry-cycle cost charged per stall, scaled by the length of the
        consecutive-stall run (see :mod:`repro.net.flowcontrol`).
    reliable:
        Run the reliable-delivery protocol (link sequence numbers, acks,
        retransmission, receiver-side duplicate suppression) above the
        wire.  Off by default: the perfect interconnect needs none of it
        and the protocol's bookkeeping would only slow simulation down.
    retry_cap:
        Retransmissions allowed per message before the transport raises
        :class:`~repro.net.transport.RetryExhaustedError`.
    rto_safety:
        First retransmission timeout as a multiple of the message's
        nominal round trip (injection + wire + ``o_recv`` + ack return).
        Must exceed 1 or clean-network sends would spuriously retransmit.
    rto_backoff:
        Exponential backoff factor applied to the timeout per retry.
    """

    topology: Topology
    bandwidth: float = 5.0e9
    o_send: float = 2.0e-7
    o_recv: float = 2.0e-7
    am_medium_max: int = 256
    ack_latency_factor: float = 1.0
    jitter: float = 0.0
    flow_credits: int | None = None
    flow_credit_scope: str = "pair"
    flow_stall_penalty: float = 2.0e-7
    reliable: bool = False
    retry_cap: int = 10
    rto_safety: float = 4.0
    rto_backoff: float = 2.0

    def __post_init__(self) -> None:
        _validate_positive("bandwidth", self.bandwidth)
        if self.o_send < 0 or self.o_recv < 0:
            raise ValueError("overheads must be non-negative")
        if self.am_medium_max <= 0:
            raise ValueError("am_medium_max must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.flow_credits is not None and self.flow_credits <= 0:
            raise ValueError("flow_credits must be positive or None")
        if self.flow_credit_scope not in ("pair", "source"):
            raise ValueError("flow_credit_scope must be 'pair' or 'source'")
        if self.flow_stall_penalty < 0:
            raise ValueError("flow_stall_penalty must be non-negative")
        if self.retry_cap < 0:
            raise ValueError("retry_cap must be non-negative")
        if self.rto_safety <= 1.0:
            raise ValueError("rto_safety must exceed 1 (else clean sends "
                             "would spuriously retransmit)")
        if self.rto_backoff < 1.0:
            raise ValueError("rto_backoff must be at least 1")

    @property
    def n_images(self) -> int:
        return self.topology.n_images

    def transfer_time(self, size: int) -> float:
        """Serialization time for ``size`` payload bytes."""
        if size < 0:
            raise ValueError(f"negative message size {size!r}")
        return size / self.bandwidth

    @classmethod
    def uniform(cls, n_images: int, **kwargs) -> "MachineParams":
        """Convenience: a uniform-latency machine with default parameters."""
        topo_kwargs = {}
        for key in ("wire_latency", "self_latency"):
            if key in kwargs:
                topo_kwargs[key] = kwargs.pop(key)
        return cls(topology=UniformTopology(n_images, **topo_kwargs), **kwargs)


def log2_rounds(n: int) -> int:
    """Rounds of a binomial tree over ``n`` participants (ceil(log2 n))."""
    if n <= 0:
        raise ValueError("n must be positive")
    return max(1, math.ceil(math.log2(n))) if n > 1 else 0
