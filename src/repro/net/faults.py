"""Deterministic network fault injection.

A :class:`FaultPlan` describes how the simulated interconnect misbehaves.
:class:`~repro.net.transport.Network` consults the plan on every wire
transmission and every acknowledgment, so with a plan installed the
machine exercises exactly the hostile-network conditions the paper's
termination detector must tolerate (lost counter messages, duplicated
deliveries, reordering beyond the latency jitter already modelled).

Every decision is driven by one :class:`numpy.random.Generator` owned by
the plan, so a run with the same plan seed (or the same machine seed,
when the plan is left unseeded and the machine derives one from its
:class:`~repro.sim.rng.RngPool`) replays the identical fault sequence —
chaos runs are as reproducible as clean ones.

Fault classes
-------------
- *drops*: each wire transmission of a remote message is lost with
  probability ``drop`` (overridable per directed link via ``link_drop``);
  acknowledgments are lost with probability ``ack_drop``.
- *duplication*: a transmission that survives the drop roll is delivered
  twice with probability ``duplicate``; the copy arrives later by a
  random fraction of the wire latency.
- *reorder*: every transmission gains an extra delay uniform in
  ``[0, reorder * latency)``, reordering messages between a pair far
  more aggressively than ``MachineParams.jitter`` alone.
- *NIC stalls*: during a :class:`NicStall` window an image's NIC injects
  nothing; sends scheduled inside the window wait for its end.
- *scripted drops*: :meth:`FaultPlan.drop_nth` kills the N-th message of
  a given ``kind`` (its first transmission only — retransmissions pass),
  for surgical regression tests such as "lose the first ``coll.up`` of
  the termination wave".

Gray failures (DESIGN §12)
--------------------------
Beyond clean losses and fail-stop crashes the plan scripts *gray*
failures — conditions that look like a crash to a timeout detector but
are not one:

- *stragglers* (:class:`Straggler` / :meth:`FaultPlan.straggle`): a
  per-image service-time multiplier over a window.  The transport
  stretches the image's NIC injection times by the factor, the image's
  modelled computation slows, and its failure-detector task ticks at the
  degraded rate — so its heartbeats arrive late, exactly the signature
  that flips a fixed-timeout detector.
- *partitions* (:class:`Partition` / :meth:`FaultPlan.partition`): the
  images split into groups at ``start``; every transmission crossing a
  group boundary is lost until ``heal_at`` (forever when None).
- *flapping links* (:class:`LinkFlap` / :meth:`FaultPlan.flap_link`): a
  directed link alternates down/up windows on a fixed cadence.

All three are pure functions of virtual time (:meth:`service_factor`,
:meth:`link_down`) — no rng draws — so adding them never shifts the
drop/duplicate decision stream of an existing seed.

Schedule-space composition (DESIGN §10 x §12)
---------------------------------------------
:meth:`crash_choice` and :meth:`partition_choice` script fault *menus*
instead of fixed timings: when the machine carries a schedule source,
each menu becomes a ``"fault"`` :class:`~repro.sim.engine.ChoicePoint`
(alternative 0 = fault absent, k = the k-th scripted timing), resolved
once at machine construction via :meth:`resolve_choices`.  Crash and
partition timing thereby lives in the same recorded, replayable,
minimizable search space as message ordering.

Loopback messages (``src == dst``) never fault: they model in-memory
hand-off, not wire traffic.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

__all__ = ["FaultPlan", "LinkFlap", "NicStall", "Partition", "Straggler"]


@dataclass(frozen=True)
class NicStall:
    """A window during which one image's NIC injects nothing."""

    image: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.image < 0:
            raise ValueError(f"negative image {self.image}")
        if self.start < 0 or self.duration <= 0:
            raise ValueError(
                f"stall window needs start >= 0 and duration > 0, got "
                f"start={self.start!r} duration={self.duration!r}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class Straggler:
    """A per-image service-time multiplier over a window.

    While active (``degrade_at <= t < recover_at``) every modelled
    service time on ``image`` — NIC injection, ``compute`` durations,
    its detector's tick period — is stretched by ``factor``.  The image
    stays correct, just slow: the canonical gray failure."""

    image: int
    factor: float
    degrade_at: float = 0.0
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.image < 0:
            raise ValueError(f"negative image {self.image}")
        if self.factor < 1.0:
            raise ValueError(
                f"straggler factor must be >= 1, got {self.factor!r}")
        if self.degrade_at < 0:
            raise ValueError(f"negative degrade_at {self.degrade_at!r}")
        if self.recover_at is not None and self.recover_at <= self.degrade_at:
            raise ValueError(
                f"recover_at must exceed degrade_at, got "
                f"degrade_at={self.degrade_at!r} recover_at={self.recover_at!r}")

    def applies(self, t: float) -> bool:
        return (self.degrade_at <= t
                and (self.recover_at is None or t < self.recover_at))


@dataclass(frozen=True)
class Partition:
    """A group-split of the images over ``[start, heal_at)``.

    While active, any transmission whose endpoints both appear in
    ``groups`` but in *different* groups is lost on the wire.  Images
    not listed in any group are unaffected (they can reach everyone).
    ``heal_at=None`` means the partition never heals."""

    groups: tuple
    start: float
    heal_at: Optional[float] = None

    def __post_init__(self) -> None:
        norm = tuple(tuple(sorted(int(i) for i in g)) for g in self.groups)
        object.__setattr__(self, "groups", tuple(sorted(norm)))
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")
        side: dict[int, int] = {}
        for gi, group in enumerate(self.groups):
            if not group:
                raise ValueError("partition groups must be non-empty")
            for image in group:
                if image < 0:
                    raise ValueError(f"negative image {image}")
                if image in side:
                    raise ValueError(
                        f"image {image} appears in two partition groups")
                side[image] = gi
        if self.start < 0:
            raise ValueError(f"negative partition start {self.start!r}")
        if self.heal_at is not None and self.heal_at <= self.start:
            raise ValueError(
                f"heal_at must exceed start, got start={self.start!r} "
                f"heal_at={self.heal_at!r}")
        object.__setattr__(self, "_side", side)

    def severs(self, src: int, dst: int, t: float) -> bool:
        if t < self.start or (self.heal_at is not None and t >= self.heal_at):
            return False
        side = self._side
        a = side.get(src)
        return a is not None and a != side.get(dst, a)


@dataclass(frozen=True)
class LinkFlap:
    """A directed link that alternates down/up windows on a fixed
    cadence: down for ``down_for``, up for ``up_for``, repeating from
    ``start`` until ``until`` (forever when None)."""

    src: int
    dst: int
    start: float
    down_for: float
    up_for: float
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"negative image in link ({self.src}, {self.dst})")
        if self.src == self.dst:
            raise ValueError("loopback links never fault")
        if self.start < 0:
            raise ValueError(f"negative flap start {self.start!r}")
        if self.down_for <= 0 or self.up_for <= 0:
            raise ValueError(
                f"flap windows need down_for > 0 and up_for > 0, got "
                f"down_for={self.down_for!r} up_for={self.up_for!r}")
        if self.until is not None and self.until <= self.start:
            raise ValueError(
                f"until must exceed start, got start={self.start!r} "
                f"until={self.until!r}")

    def down(self, t: float) -> bool:
        if t < self.start or (self.until is not None and t >= self.until):
            return False
        phase = math.fmod(t - self.start, self.down_for + self.up_for)
        return phase < self.down_for


def _check_prob(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value < 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1), got "
                         f"{value!r}")
    return value


class FaultPlan:
    """A reproducible script of network misbehaviour.

    Parameters
    ----------
    drop:
        Default per-transmission drop probability for remote messages.
    duplicate:
        Probability a surviving transmission is delivered twice.
    reorder:
        Extra delay factor: each transmission is delayed by an extra
        uniform ``[0, reorder * latency)`` (0 disables).
    ack_drop:
        Drop probability for protocol acknowledgments; defaults to
        ``drop``.
    link_drop:
        Per-directed-link overrides, ``{(src, dst): probability}``.
    stalls:
        Iterable of :class:`NicStall` windows.
    seed:
        Seed for the plan's random stream.  ``None`` (default) lets the
        machine derive the stream from its own seed, so chaos varies
        with ``Machine(seed=...)`` exactly like image rngs do.

    A plan holds mutable per-run state (rng position, per-kind message
    counts); build a fresh plan — or :meth:`clone` one — per simulation
    run.
    """

    def __init__(self, drop: float = 0.0, duplicate: float = 0.0,
                 reorder: float = 0.0,
                 ack_drop: Optional[float] = None,
                 link_drop: Optional[dict] = None,
                 stalls: Iterable[NicStall] = (),
                 stragglers: Iterable[Straggler] = (),
                 partitions: Iterable[Partition] = (),
                 flaps: Iterable[LinkFlap] = (),
                 seed: Optional[int] = None):
        self.drop = _check_prob("drop", drop)
        self.duplicate = _check_prob("duplicate", duplicate)
        self.reorder = float(reorder)
        if self.reorder < 0:
            raise ValueError(f"reorder must be non-negative, got {reorder!r}")
        self.ack_drop = (self.drop if ack_drop is None
                         else _check_prob("ack_drop", ack_drop))
        self.link_drop = {}
        for link, p in (link_drop or {}).items():
            src, dst = link
            self.link_drop[(int(src), int(dst))] = _check_prob(
                f"link_drop[{link}]", p)
        self.stalls = tuple(stalls)
        for stall in self.stalls:
            if not isinstance(stall, NicStall):
                raise TypeError(f"stalls must be NicStall, got {stall!r}")
        self.stragglers = tuple(stragglers)
        for s in self.stragglers:
            if not isinstance(s, Straggler):
                raise TypeError(f"stragglers must be Straggler, got {s!r}")
        self.partitions = tuple(partitions)
        for p in self.partitions:
            if not isinstance(p, Partition):
                raise TypeError(f"partitions must be Partition, got {p!r}")
        self.flaps = tuple(flaps)
        for f in self.flaps:
            if not isinstance(f, LinkFlap):
                raise TypeError(f"flaps must be LinkFlap, got {f!r}")
        self.seed = seed
        self._rng: Optional[np.random.Generator] = None
        self._scripted: set[tuple[str, int]] = set()
        self._kind_counts: dict[str, int] = defaultdict(int)
        #: Fail-stop crash scripts: {image: time} and {image: send count}.
        self.crashes: dict[int, float] = {}
        self.crash_after_sends: dict[int, int] = {}
        self._send_counts: dict[int, int] = defaultdict(int)
        #: Fault *menus* for schedule-space composition (DESIGN §12):
        #: {image: candidate crash times} and
        #: [(groups, candidate starts, heal_after)].  Resolved to
        #: concrete faults per run by :meth:`resolve_choices`.
        self.crash_choices: dict[int, tuple] = {}
        self.partition_choices: list[tuple] = []
        # Per-run resolution of the menus (never copied by clone).
        self._resolved_crashes: dict[int, float] = {}
        self._resolved_partitions: tuple = ()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def drop_nth(self, kind: str, n: Union[int, Iterable[int]]) -> "FaultPlan":
        """Script a targeted loss: drop the ``n``-th message (1-based)
        of ``kind`` on its first transmission.  Chainable; ``n`` may be
        one index or an iterable of indices."""
        indices = (n,) if isinstance(n, int) else tuple(n)
        for i in indices:
            if i < 1:
                raise ValueError(f"message indices are 1-based, got {i}")
            self._scripted.add((kind, int(i)))
        return self

    def crash_at(self, image: int, time: float) -> "FaultPlan":
        """Script a fail-stop crash of ``image`` at virtual ``time``.
        Chainable; one crash per image (the earliest time wins)."""
        if image < 0:
            raise ValueError(f"negative image {image}")
        time = float(time)
        if time < 0:
            raise ValueError(f"negative crash time {time!r}")
        if image in self.crashes:
            self.crashes[image] = min(self.crashes[image], time)
        else:
            self.crashes[image] = time
        return self

    def crash_after_n_sends(self, image: int, n: int) -> "FaultPlan":
        """Script a fail-stop crash of ``image`` the instant it issues
        its ``n``-th original send (1-based; retransmissions do not
        count).  Chainable; the smallest ``n`` per image wins."""
        if image < 0:
            raise ValueError(f"negative image {image}")
        if n < 1:
            raise ValueError(f"send counts are 1-based, got {n}")
        n = int(n)
        if image in self.crash_after_sends:
            self.crash_after_sends[image] = min(
                self.crash_after_sends[image], n)
        else:
            self.crash_after_sends[image] = n
        return self

    def straggle(self, image: int, factor: float, degrade_at: float = 0.0,
                 recover_at: Optional[float] = None) -> "FaultPlan":
        """Script a service-time slowdown: ``image`` runs ``factor``×
        slower over ``[degrade_at, recover_at)``.  Chainable."""
        self.stragglers += (Straggler(image, float(factor),
                                      float(degrade_at),
                                      None if recover_at is None
                                      else float(recover_at)),)
        return self

    def partition(self, groups: Iterable[Iterable[int]], at: float,
                  heal_at: Optional[float] = None) -> "FaultPlan":
        """Script a network partition: the listed images split into
        ``groups`` at time ``at``; cross-group transmissions are lost
        until ``heal_at`` (forever when None).  Chainable."""
        self.partitions += (Partition(tuple(tuple(g) for g in groups),
                                      float(at),
                                      None if heal_at is None
                                      else float(heal_at)),)
        return self

    def flap_link(self, src: int, dst: int, at: float, down_for: float,
                  up_for: float, until: Optional[float] = None) -> "FaultPlan":
        """Script a flapping directed link: from ``at``, down for
        ``down_for`` then up for ``up_for``, repeating until ``until``
        (forever when None).  Chainable."""
        self.flaps += (LinkFlap(int(src), int(dst), float(at),
                                float(down_for), float(up_for),
                                None if until is None else float(until)),)
        return self

    def crash_choice(self, image: int,
                     times: Iterable[float]) -> "FaultPlan":
        """Script a crash *menu*: when the run carries a schedule
        source, a ``"fault"`` choice point picks one of ``times`` for a
        fail-stop crash of ``image`` — or alternative 0, no crash.
        Without a source the menu resolves to "no crash".  Chainable;
        times are canonicalized sorted so the alternative indices are
        order-independent."""
        if image < 0:
            raise ValueError(f"negative image {image}")
        ts = tuple(sorted(float(t) for t in times))
        if not ts:
            raise ValueError("crash_choice needs at least one candidate time")
        if ts[0] < 0:
            raise ValueError(f"negative crash time {ts[0]!r}")
        self.crash_choices[image] = tuple(
            sorted(set(self.crash_choices.get(image, ()) + ts)))
        return self

    def partition_choice(self, groups: Iterable[Iterable[int]],
                         starts: Iterable[float],
                         heal_after: Optional[float] = None) -> "FaultPlan":
        """Script a partition *menu*: a ``"fault"`` choice point picks
        one of ``starts`` (or no partition) for a group-split that heals
        ``heal_after`` later (never, when None).  Chainable."""
        norm = tuple(tuple(sorted(int(i) for i in g)) for g in groups)
        ts = tuple(sorted(float(t) for t in starts))
        if not ts:
            raise ValueError(
                "partition_choice needs at least one candidate start")
        if ts[0] < 0:
            raise ValueError(f"negative partition start {ts[0]!r}")
        if heal_after is not None and heal_after <= 0:
            raise ValueError(f"heal_after must be positive, got {heal_after!r}")
        # Validate the groups eagerly by building a throwaway Partition.
        Partition(norm, ts[0],
                  None if heal_after is None else ts[0] + heal_after)
        self.partition_choices.append(
            (tuple(sorted(norm)), ts,
             None if heal_after is None else float(heal_after)))
        return self

    def resolve_choices(self, source) -> None:
        """Resolve every fault menu against a schedule source (one
        ``"fault"`` :class:`~repro.sim.engine.ChoicePoint` per menu, in
        deterministic order).  ``source=None`` resolves every menu to
        "no fault".  Called once per run by the machine; per-run state,
        never copied by :meth:`clone`."""
        self._resolved_crashes = {}
        self._resolved_partitions = ()
        if source is None:
            return
        from repro.sim.engine import ChoicePoint
        for image in sorted(self.crash_choices):
            times = self.crash_choices[image]
            labels = ("none",) + tuple(f"t={t:g}" for t in times)
            pick = source.choose(ChoicePoint(
                "fault", len(times) + 1, labels=labels,
                key=f"crash@{image}"))
            if pick:
                self._resolved_crashes[image] = times[pick - 1]
        resolved = []
        for i, (groups, starts, heal_after) in enumerate(
                self.partition_choices):
            labels = ("none",) + tuple(f"t={t:g}" for t in starts)
            pick = source.choose(ChoicePoint(
                "fault", len(starts) + 1, labels=labels,
                key=f"partition@{i}"))
            if pick:
                t0 = starts[pick - 1]
                resolved.append(Partition(
                    groups, t0,
                    None if heal_after is None else t0 + heal_after))
        self._resolved_partitions = tuple(resolved)

    def resolved_faults(self) -> dict[str, str]:
        """How this run's fault menus resolved, as ``{menu key: chosen
        label}`` using the same keys/labels the ``"fault"`` choice
        points carry (``crash@<image>`` / ``partition@<i>``, labels
        ``"none"`` or ``"t=<time>"``).  The fuzzing service records this
        next to each finding and feeds it to the coverage map, so menu
        resolutions are first-class coverage features.  Empty when the
        plan has no menus; per-run state, like the resolutions
        themselves."""
        picks: dict[str, str] = {}
        for image in sorted(self.crash_choices):
            t = self._resolved_crashes.get(image)
            picks[f"crash@{image}"] = "none" if t is None else f"t={t:g}"
        resolved_starts = {p.groups: p.start
                          for p in self._resolved_partitions}
        for i, (groups, starts, heal_after) in enumerate(
                self.partition_choices):
            t0 = resolved_starts.get(groups)
            picks[f"partition@{i}"] = ("none" if t0 is None
                                       else f"t={t0:g}")
        return picks

    def scheduled_crashes(self) -> dict[int, float]:
        """Concrete fail-stop crashes for this run: the fixed
        ``crash_at`` script merged with any menu picks (earliest time
        wins per image)."""
        merged = dict(self.crashes)
        for image, t in self._resolved_crashes.items():
            merged[image] = min(merged.get(image, t), t)
        return merged

    def count_send(self, image: int) -> bool:
        """Count one original send by ``image``; True if it just hit a
        scripted ``crash_after_n_sends`` threshold."""
        if image not in self.crash_after_sends:
            return False
        self._send_counts[image] += 1
        return self._send_counts[image] == self.crash_after_sends[image]

    def clone(self) -> "FaultPlan":
        """A fresh plan with identical configuration and virgin per-run
        state (rng position, kind counts)."""
        plan = FaultPlan(drop=self.drop, duplicate=self.duplicate,
                         reorder=self.reorder, ack_drop=self.ack_drop,
                         link_drop=dict(self.link_drop), stalls=self.stalls,
                         stragglers=self.stragglers,
                         partitions=self.partitions, flaps=self.flaps,
                         seed=self.seed)
        plan._scripted = set(self._scripted)
        plan.crashes = dict(self.crashes)
        plan.crash_after_sends = dict(self.crash_after_sends)
        plan.crash_choices = dict(self.crash_choices)
        plan.partition_choices = list(self.partition_choices)
        return plan

    def bind(self, rng: np.random.Generator) -> None:
        """Install the random stream (the machine calls this to derive
        fault decisions from its master seed when the plan is unseeded)."""
        self._rng = rng

    def to_config(self) -> dict:
        """A JSON-serializable description of the plan.  Together with a
        machine seed this pins every fault decision: the rng stream and
        the per-kind scripted-drop script are both functions of the
        config, so :meth:`from_config` rebuilds a plan whose decision
        sequence replays identically.  Used by the schedule-exploration
        subsystem to embed fault plans in replayable schedules."""
        return {
            "drop": self.drop,
            "duplicate": self.duplicate,
            "reorder": self.reorder,
            "ack_drop": self.ack_drop,
            "link_drop": [[src, dst, p]
                          for (src, dst), p in sorted(self.link_drop.items())],
            "stalls": [[s.image, s.start, s.duration] for s in self.stalls],
            "scripted": sorted([kind, n] for kind, n in self._scripted),
            "crashes": [[image, t] for image, t in sorted(self.crashes.items())],
            "crash_after_sends": [
                [image, n]
                for image, n in sorted(self.crash_after_sends.items())],
            "stragglers": [[s.image, s.factor, s.degrade_at, s.recover_at]
                           for s in self.stragglers],
            "partitions": [[[list(g) for g in p.groups], p.start, p.heal_at]
                           for p in self.partitions],
            "flaps": [[f.src, f.dst, f.start, f.down_for, f.up_for, f.until]
                      for f in self.flaps],
            "crash_choices": [[image, list(times)]
                              for image, times
                              in sorted(self.crash_choices.items())],
            "partition_choices": [
                [[list(g) for g in groups], list(starts), heal_after]
                for groups, starts, heal_after in self.partition_choices],
            "seed": self.seed,
        }

    @classmethod
    def from_config(cls, config: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_config` output (virgin per-run
        state, same decision sequence once bound to the same seed)."""
        plan = cls(
            drop=config.get("drop", 0.0),
            duplicate=config.get("duplicate", 0.0),
            reorder=config.get("reorder", 0.0),
            ack_drop=config.get("ack_drop"),
            link_drop={(src, dst): p
                       for src, dst, p in config.get("link_drop", [])},
            stalls=[NicStall(image, start, duration)
                    for image, start, duration in config.get("stalls", [])],
            stragglers=[Straggler(int(image), factor, degrade_at, recover_at)
                        for image, factor, degrade_at, recover_at
                        in config.get("stragglers", [])],
            partitions=[Partition(tuple(tuple(g) for g in groups),
                                  start, heal_at)
                        for groups, start, heal_at
                        in config.get("partitions", [])],
            flaps=[LinkFlap(int(src), int(dst), start, down_for, up_for,
                            until)
                   for src, dst, start, down_for, up_for, until
                   in config.get("flaps", [])],
            seed=config.get("seed"),
        )
        for kind, n in config.get("scripted", []):
            plan.drop_nth(kind, int(n))
        for image, t in config.get("crashes", []):
            plan.crash_at(int(image), float(t))
        for image, n in config.get("crash_after_sends", []):
            plan.crash_after_n_sends(int(image), int(n))
        for image, times in config.get("crash_choices", []):
            plan.crash_choice(int(image), times)
        for groups, starts, heal_after in config.get("partition_choices", []):
            plan.partition_choice(groups, starts, heal_after)
        return plan

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = np.random.default_rng(
                np.random.SeedSequence(0 if self.seed is None else self.seed))
        return self._rng

    @property
    def active(self) -> bool:
        """Whether the plan can fault anything at all."""
        return bool(self.drop or self.duplicate or self.reorder
                    or self.ack_drop or self.link_drop or self.stalls
                    or self._scripted or self.crashes
                    or self.crash_after_sends or self.stragglers
                    or self.partitions or self.flaps
                    or self.crash_choices or self.partition_choices)

    # ------------------------------------------------------------------ #
    # Decisions (one call per transmission / ack, in simulation order)
    # ------------------------------------------------------------------ #

    def take_scripted_drop(self, kind: str) -> bool:
        """Count one original send of ``kind``; True if its index was
        scripted to drop.  Called exactly once per message (not per
        retransmission)."""
        self._kind_counts[kind] += 1
        return (kind, self._kind_counts[kind]) in self._scripted

    def drop_probability(self, src: int, dst: int) -> float:
        return self.link_drop.get((src, dst), self.drop)

    def roll_drop(self, src: int, dst: int) -> bool:
        p = self.drop_probability(src, dst)
        return p > 0.0 and float(self.rng.random()) < p

    def roll_duplicate(self) -> bool:
        return (self.duplicate > 0.0
                and float(self.rng.random()) < self.duplicate)

    def roll_ack_drop(self, src: int, dst: int) -> bool:
        return (self.ack_drop > 0.0
                and float(self.rng.random()) < self.ack_drop)

    def extra_latency(self, latency: float) -> float:
        """Reorder jitter: an extra delay in ``[0, reorder * latency)``."""
        if self.reorder <= 0.0:
            return 0.0
        return latency * self.reorder * float(self.rng.random())

    def duplicate_lag(self, latency: float) -> float:
        """How far behind the original the duplicate copy arrives."""
        return latency * (0.1 + 0.9 * float(self.rng.random()))

    def release_time(self, image: int, t: float) -> float:
        """Earliest time ``image``'s NIC may inject at or after ``t``
        (pushed past any stall window containing it)."""
        released = t
        # windows may chain; iterate until no window contains the time
        moved = True
        while moved:
            moved = False
            for stall in self.stalls:
                if stall.image == image and stall.start <= released < stall.end:
                    released = stall.end
                    moved = True
        return released

    def service_factor(self, image: int, t: float) -> float:
        """Service-time multiplier for ``image`` at time ``t`` (1.0 when
        no straggler window applies; overlapping windows take the worst
        factor).  Pure in ``t`` — no rng draw."""
        factor = 1.0
        for s in self.stragglers:
            if s.image == image and s.applies(t) and s.factor > factor:
                factor = s.factor
        return factor

    def link_down(self, src: int, dst: int, t: float) -> bool:
        """Whether the directed link ``src -> dst`` is severed at time
        ``t`` by a partition (scripted or menu-resolved) or a flap
        window.  Pure in ``t`` — no rng draw."""
        for p in self.partitions:
            if p.severs(src, dst, t):
                return True
        for p in self._resolved_partitions:
            if p.severs(src, dst, t):
                return True
        for f in self.flaps:
            if f.src == src and f.dst == dst and f.down(t):
                return True
        return False

    @property
    def gray(self) -> bool:
        """Whether any gray-failure script could affect the wire
        (checked once per transmission; cheap tuple truthiness)."""
        return bool(self.partitions or self._resolved_partitions
                    or self.flaps)

    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        parts = [f"drop={self.drop}", f"duplicate={self.duplicate}"]
        if self.reorder:
            parts.append(f"reorder={self.reorder}")
        if self.ack_drop != self.drop:
            parts.append(f"ack_drop={self.ack_drop}")
        if self.link_drop:
            parts.append(f"link_drop={self.link_drop}")
        if self.stalls:
            parts.append(f"stalls={len(self.stalls)}")
        if self._scripted:
            parts.append(f"scripted={sorted(self._scripted)}")
        if self.crashes:
            parts.append(f"crashes={sorted(self.crashes.items())}")
        if self.crash_after_sends:
            parts.append(
                f"crash_after_sends={sorted(self.crash_after_sends.items())}")
        if self.stragglers:
            parts.append(f"stragglers={len(self.stragglers)}")
        if self.partitions:
            parts.append(f"partitions={len(self.partitions)}")
        if self.flaps:
            parts.append(f"flaps={len(self.flaps)}")
        if self.crash_choices:
            parts.append(f"crash_choices={sorted(self.crash_choices.items())}")
        if self.partition_choices:
            parts.append(f"partition_choices={len(self.partition_choices)}")
        parts.append(f"seed={self.seed}")
        return f"FaultPlan({', '.join(parts)})"

    __repr__ = describe
