"""Deterministic network fault injection.

A :class:`FaultPlan` describes how the simulated interconnect misbehaves.
:class:`~repro.net.transport.Network` consults the plan on every wire
transmission and every acknowledgment, so with a plan installed the
machine exercises exactly the hostile-network conditions the paper's
termination detector must tolerate (lost counter messages, duplicated
deliveries, reordering beyond the latency jitter already modelled).

Every decision is driven by one :class:`numpy.random.Generator` owned by
the plan, so a run with the same plan seed (or the same machine seed,
when the plan is left unseeded and the machine derives one from its
:class:`~repro.sim.rng.RngPool`) replays the identical fault sequence —
chaos runs are as reproducible as clean ones.

Fault classes
-------------
- *drops*: each wire transmission of a remote message is lost with
  probability ``drop`` (overridable per directed link via ``link_drop``);
  acknowledgments are lost with probability ``ack_drop``.
- *duplication*: a transmission that survives the drop roll is delivered
  twice with probability ``duplicate``; the copy arrives later by a
  random fraction of the wire latency.
- *reorder*: every transmission gains an extra delay uniform in
  ``[0, reorder * latency)``, reordering messages between a pair far
  more aggressively than ``MachineParams.jitter`` alone.
- *NIC stalls*: during a :class:`NicStall` window an image's NIC injects
  nothing; sends scheduled inside the window wait for its end.
- *scripted drops*: :meth:`FaultPlan.drop_nth` kills the N-th message of
  a given ``kind`` (its first transmission only — retransmissions pass),
  for surgical regression tests such as "lose the first ``coll.up`` of
  the termination wave".

Loopback messages (``src == dst``) never fault: they model in-memory
hand-off, not wire traffic.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

__all__ = ["FaultPlan", "NicStall"]


@dataclass(frozen=True)
class NicStall:
    """A window during which one image's NIC injects nothing."""

    image: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.image < 0:
            raise ValueError(f"negative image {self.image}")
        if self.start < 0 or self.duration <= 0:
            raise ValueError(
                f"stall window needs start >= 0 and duration > 0, got "
                f"start={self.start!r} duration={self.duration!r}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


def _check_prob(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value < 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1), got "
                         f"{value!r}")
    return value


class FaultPlan:
    """A reproducible script of network misbehaviour.

    Parameters
    ----------
    drop:
        Default per-transmission drop probability for remote messages.
    duplicate:
        Probability a surviving transmission is delivered twice.
    reorder:
        Extra delay factor: each transmission is delayed by an extra
        uniform ``[0, reorder * latency)`` (0 disables).
    ack_drop:
        Drop probability for protocol acknowledgments; defaults to
        ``drop``.
    link_drop:
        Per-directed-link overrides, ``{(src, dst): probability}``.
    stalls:
        Iterable of :class:`NicStall` windows.
    seed:
        Seed for the plan's random stream.  ``None`` (default) lets the
        machine derive the stream from its own seed, so chaos varies
        with ``Machine(seed=...)`` exactly like image rngs do.

    A plan holds mutable per-run state (rng position, per-kind message
    counts); build a fresh plan — or :meth:`clone` one — per simulation
    run.
    """

    def __init__(self, drop: float = 0.0, duplicate: float = 0.0,
                 reorder: float = 0.0,
                 ack_drop: Optional[float] = None,
                 link_drop: Optional[dict] = None,
                 stalls: Iterable[NicStall] = (),
                 seed: Optional[int] = None):
        self.drop = _check_prob("drop", drop)
        self.duplicate = _check_prob("duplicate", duplicate)
        self.reorder = float(reorder)
        if self.reorder < 0:
            raise ValueError(f"reorder must be non-negative, got {reorder!r}")
        self.ack_drop = (self.drop if ack_drop is None
                         else _check_prob("ack_drop", ack_drop))
        self.link_drop = {}
        for link, p in (link_drop or {}).items():
            src, dst = link
            self.link_drop[(int(src), int(dst))] = _check_prob(
                f"link_drop[{link}]", p)
        self.stalls = tuple(stalls)
        for stall in self.stalls:
            if not isinstance(stall, NicStall):
                raise TypeError(f"stalls must be NicStall, got {stall!r}")
        self.seed = seed
        self._rng: Optional[np.random.Generator] = None
        self._scripted: set[tuple[str, int]] = set()
        self._kind_counts: dict[str, int] = defaultdict(int)
        #: Fail-stop crash scripts: {image: time} and {image: send count}.
        self.crashes: dict[int, float] = {}
        self.crash_after_sends: dict[int, int] = {}
        self._send_counts: dict[int, int] = defaultdict(int)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def drop_nth(self, kind: str, n: Union[int, Iterable[int]]) -> "FaultPlan":
        """Script a targeted loss: drop the ``n``-th message (1-based)
        of ``kind`` on its first transmission.  Chainable; ``n`` may be
        one index or an iterable of indices."""
        indices = (n,) if isinstance(n, int) else tuple(n)
        for i in indices:
            if i < 1:
                raise ValueError(f"message indices are 1-based, got {i}")
            self._scripted.add((kind, int(i)))
        return self

    def crash_at(self, image: int, time: float) -> "FaultPlan":
        """Script a fail-stop crash of ``image`` at virtual ``time``.
        Chainable; one crash per image (the earliest time wins)."""
        if image < 0:
            raise ValueError(f"negative image {image}")
        time = float(time)
        if time < 0:
            raise ValueError(f"negative crash time {time!r}")
        if image in self.crashes:
            self.crashes[image] = min(self.crashes[image], time)
        else:
            self.crashes[image] = time
        return self

    def crash_after_n_sends(self, image: int, n: int) -> "FaultPlan":
        """Script a fail-stop crash of ``image`` the instant it issues
        its ``n``-th original send (1-based; retransmissions do not
        count).  Chainable; the smallest ``n`` per image wins."""
        if image < 0:
            raise ValueError(f"negative image {image}")
        if n < 1:
            raise ValueError(f"send counts are 1-based, got {n}")
        n = int(n)
        if image in self.crash_after_sends:
            self.crash_after_sends[image] = min(
                self.crash_after_sends[image], n)
        else:
            self.crash_after_sends[image] = n
        return self

    def count_send(self, image: int) -> bool:
        """Count one original send by ``image``; True if it just hit a
        scripted ``crash_after_n_sends`` threshold."""
        if image not in self.crash_after_sends:
            return False
        self._send_counts[image] += 1
        return self._send_counts[image] == self.crash_after_sends[image]

    def clone(self) -> "FaultPlan":
        """A fresh plan with identical configuration and virgin per-run
        state (rng position, kind counts)."""
        plan = FaultPlan(drop=self.drop, duplicate=self.duplicate,
                         reorder=self.reorder, ack_drop=self.ack_drop,
                         link_drop=dict(self.link_drop), stalls=self.stalls,
                         seed=self.seed)
        plan._scripted = set(self._scripted)
        plan.crashes = dict(self.crashes)
        plan.crash_after_sends = dict(self.crash_after_sends)
        return plan

    def bind(self, rng: np.random.Generator) -> None:
        """Install the random stream (the machine calls this to derive
        fault decisions from its master seed when the plan is unseeded)."""
        self._rng = rng

    def to_config(self) -> dict:
        """A JSON-serializable description of the plan.  Together with a
        machine seed this pins every fault decision: the rng stream and
        the per-kind scripted-drop script are both functions of the
        config, so :meth:`from_config` rebuilds a plan whose decision
        sequence replays identically.  Used by the schedule-exploration
        subsystem to embed fault plans in replayable schedules."""
        return {
            "drop": self.drop,
            "duplicate": self.duplicate,
            "reorder": self.reorder,
            "ack_drop": self.ack_drop,
            "link_drop": [[src, dst, p]
                          for (src, dst), p in sorted(self.link_drop.items())],
            "stalls": [[s.image, s.start, s.duration] for s in self.stalls],
            "scripted": sorted([kind, n] for kind, n in self._scripted),
            "crashes": [[image, t] for image, t in sorted(self.crashes.items())],
            "crash_after_sends": [
                [image, n]
                for image, n in sorted(self.crash_after_sends.items())],
            "seed": self.seed,
        }

    @classmethod
    def from_config(cls, config: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_config` output (virgin per-run
        state, same decision sequence once bound to the same seed)."""
        plan = cls(
            drop=config.get("drop", 0.0),
            duplicate=config.get("duplicate", 0.0),
            reorder=config.get("reorder", 0.0),
            ack_drop=config.get("ack_drop"),
            link_drop={(src, dst): p
                       for src, dst, p in config.get("link_drop", [])},
            stalls=[NicStall(image, start, duration)
                    for image, start, duration in config.get("stalls", [])],
            seed=config.get("seed"),
        )
        for kind, n in config.get("scripted", []):
            plan.drop_nth(kind, int(n))
        for image, t in config.get("crashes", []):
            plan.crash_at(int(image), float(t))
        for image, n in config.get("crash_after_sends", []):
            plan.crash_after_n_sends(int(image), int(n))
        return plan

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = np.random.default_rng(
                np.random.SeedSequence(0 if self.seed is None else self.seed))
        return self._rng

    @property
    def active(self) -> bool:
        """Whether the plan can fault anything at all."""
        return bool(self.drop or self.duplicate or self.reorder
                    or self.ack_drop or self.link_drop or self.stalls
                    or self._scripted or self.crashes
                    or self.crash_after_sends)

    # ------------------------------------------------------------------ #
    # Decisions (one call per transmission / ack, in simulation order)
    # ------------------------------------------------------------------ #

    def take_scripted_drop(self, kind: str) -> bool:
        """Count one original send of ``kind``; True if its index was
        scripted to drop.  Called exactly once per message (not per
        retransmission)."""
        self._kind_counts[kind] += 1
        return (kind, self._kind_counts[kind]) in self._scripted

    def drop_probability(self, src: int, dst: int) -> float:
        return self.link_drop.get((src, dst), self.drop)

    def roll_drop(self, src: int, dst: int) -> bool:
        p = self.drop_probability(src, dst)
        return p > 0.0 and float(self.rng.random()) < p

    def roll_duplicate(self) -> bool:
        return (self.duplicate > 0.0
                and float(self.rng.random()) < self.duplicate)

    def roll_ack_drop(self, src: int, dst: int) -> bool:
        return (self.ack_drop > 0.0
                and float(self.rng.random()) < self.ack_drop)

    def extra_latency(self, latency: float) -> float:
        """Reorder jitter: an extra delay in ``[0, reorder * latency)``."""
        if self.reorder <= 0.0:
            return 0.0
        return latency * self.reorder * float(self.rng.random())

    def duplicate_lag(self, latency: float) -> float:
        """How far behind the original the duplicate copy arrives."""
        return latency * (0.1 + 0.9 * float(self.rng.random()))

    def release_time(self, image: int, t: float) -> float:
        """Earliest time ``image``'s NIC may inject at or after ``t``
        (pushed past any stall window containing it)."""
        released = t
        # windows may chain; iterate until no window contains the time
        moved = True
        while moved:
            moved = False
            for stall in self.stalls:
                if stall.image == image and stall.start <= released < stall.end:
                    released = stall.end
                    moved = True
        return released

    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        parts = [f"drop={self.drop}", f"duplicate={self.duplicate}"]
        if self.reorder:
            parts.append(f"reorder={self.reorder}")
        if self.ack_drop != self.drop:
            parts.append(f"ack_drop={self.ack_drop}")
        if self.link_drop:
            parts.append(f"link_drop={self.link_drop}")
        if self.stalls:
            parts.append(f"stalls={len(self.stalls)}")
        if self._scripted:
            parts.append(f"scripted={sorted(self._scripted)}")
        if self.crashes:
            parts.append(f"crashes={sorted(self.crashes.items())}")
        if self.crash_after_sends:
            parts.append(
                f"crash_after_sends={sorted(self.crash_after_sends.items())}")
        parts.append(f"seed={self.seed}")
        return f"FaultPlan({', '.join(parts)})"

    __repr__ = describe
