"""GASNet-style active messages.

An active message names a *handler* that runs at the destination when the
message is delivered.  Three categories mirror GASNet:

- ``SHORT``  — a few words of arguments, no payload;
- ``MEDIUM`` — payload up to ``MachineParams.am_medium_max`` bytes
  (the cap that limits a UTS steal to 9 work descriptors in the paper);
- ``LONG``   — bulk payload destined for a registered segment, no cap.

Handlers are either plain callables (run inline at delivery time, like
GASNet handler context: no blocking allowed) or generator functions
(spawned as a simulation task — this is how shipped functions execute).
"""

from __future__ import annotations

import enum
import inspect
from typing import Any, Callable, Generator, Optional

from repro.sim.tasks import Task
from repro.net.transport import DeliveryReceipt, Message, Network
from repro.net.flowcontrol import CreditManager


class AMCategory(enum.Enum):
    SHORT = "short"
    MEDIUM = "medium"
    LONG = "long"


class AMSizeError(ValueError):
    """Payload too large for the requested AM category."""


class HandlerContext:
    """What a handler sees when it runs at the destination image.

    ``payload`` carries the message's bulk data (or ``None``); handler
    positional arguments arrive as the handler's ``*args``.
    """

    __slots__ = ("am", "image", "src", "message", "payload")

    def __init__(self, am: "AMLayer", image: int, src: int, message: Message,
                 payload: Any):
        self.am = am
        self.image = image
        self.src = src
        self.message = message
        self.payload = payload

    def reply(self, handler: str, args: tuple = (),
              payload: Any = None, payload_size: int = 0,
              category: AMCategory = AMCategory.SHORT) -> DeliveryReceipt:
        """Send an AM back to the requester (no flow-control credits, as
        GASNet replies are credit-exempt to avoid deadlock)."""
        return self.am.request_nb(
            self.image, self.src, handler, args=args, payload=payload,
            payload_size=payload_size, category=category,
        )


class AMLayer:
    """Active-message dispatch over a :class:`Network`."""

    def __init__(self, network: Network,
                 credit_manager: Optional[CreditManager] = None):
        self.network = network
        self.sim = network.sim
        self.params = network.params
        self.credits = credit_manager
        self._handlers: dict[str, Callable] = {}

    # ------------------------------------------------------------------ #
    # Handler registry
    # ------------------------------------------------------------------ #

    def register(self, name: str, fn: Callable) -> None:
        """Register a handler.  Generator functions become tasks at
        delivery; plain callables run inline."""
        if name in self._handlers:
            raise ValueError(f"AM handler {name!r} already registered")
        self._handlers[name] = fn

    def ensure_registered(self, name: str, fn: Callable) -> None:
        """Idempotent registration (used by layers that lazily install
        their handlers)."""
        if name not in self._handlers:
            self._handlers[name] = fn

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #

    def _check_size(self, category: AMCategory, payload_size: int) -> None:
        if payload_size < 0:
            raise AMSizeError(f"negative payload size {payload_size}")
        if category is AMCategory.SHORT and payload_size > 0:
            raise AMSizeError("SHORT active messages carry no payload")
        if (category is AMCategory.MEDIUM
                and payload_size > self.params.am_medium_max):
            raise AMSizeError(
                f"MEDIUM payload {payload_size}B exceeds "
                f"am_medium_max={self.params.am_medium_max}B"
            )

    def request_nb(self, src: int, dst: int, handler: str,
                   args: tuple = (), payload: Any = None,
                   payload_size: int = 0,
                   category: AMCategory = AMCategory.MEDIUM,
                   want_ack: bool = False,
                   kind: Optional[str] = None,
                   best_effort: bool = False) -> DeliveryReceipt:
        """Fire an active message without flow-control credits.

        Safe from any context (including inline handlers).  Returns the
        transport receipt; ``receipt.injected`` is source-buffer
        local-data completion.  ``best_effort`` bypasses the reliable
        protocol (heartbeat traffic).
        """
        if handler not in self._handlers:
            raise KeyError(f"unknown AM handler {handler!r}")
        self._check_size(category, payload_size)
        msg = Message(
            src, dst, payload_size, (handler, args, payload),
            kind=kind or f"am.{handler}",
            on_deliver=self._on_deliver,
        )
        self.network.stats.incr(f"am.{category.value}")
        return self.network.send(msg, want_ack=want_ack,
                                 best_effort=best_effort)

    def request(self, src: int, dst: int, handler: str,
                args: tuple = (), payload: Any = None,
                payload_size: int = 0,
                category: AMCategory = AMCategory.MEDIUM,
                want_ack: bool = False,
                kind: Optional[str] = None
                ) -> Generator[Any, Any, DeliveryReceipt]:
        """Credit-aware request; use with ``yield from`` inside a task.

        Blocks while the (src, dst) credit pool is exhausted.  The credit
        is returned when the message's delivery ack comes back, so
        enabling credits forces ``want_ack``.
        """
        if self.credits is not None:
            yield from self.credits.acquire(src, dst)
            want_ack = True
        receipt = self.request_nb(
            src, dst, handler, args=args, payload=payload,
            payload_size=payload_size, category=category,
            want_ack=want_ack, kind=kind,
        )
        if self.credits is not None:
            receipt.delivered.add_done_callback(
                lambda _f: self.credits.release(src, dst)
            )
        return receipt

    # ------------------------------------------------------------------ #

    def _on_deliver(self, msg: Message) -> None:
        handler_name, args, payload = msg.payload
        fn = self._handlers[handler_name]
        ctx = HandlerContext(self, msg.dst, msg.src, msg, payload)
        if inspect.isgeneratorfunction(fn):
            # Handler tasks run on behalf of the destination image, so a
            # fail-stop crash of that image halts them too.
            Task(self.sim, fn(ctx, *args),
                 name=f"am.{handler_name}@{msg.dst}", owner=msg.dst)
        else:
            fn(ctx, *args)
