"""Command-line entry point: regenerate the paper's evaluation.

    python -m repro.harness [--quick] [--out FILE] [EXPERIMENT ...]

Runs every figure runner (or the named subset) and prints the tables;
``--out`` additionally writes them to a report file.  ``--quick`` uses
tiny problem sizes for a fast smoke pass (the full settings match
EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import contextlib
import io
import sys

from repro.apps.uts import TreeParams
from repro.harness import (
    ablation_detectors,
    ablation_steal_chunk,
    ablation_tree_radix,
    chaos_resilience,
    crash_recovery,
    explore_search,
    fuzz_service,
    fig05_barrier_failure,
    grayfail_detectors,
    fig12_cofence_micro,
    fig13_randomaccess_scaling,
    fig14_bunch_size,
    fig16_uts_load_balance,
    fig17_uts_efficiency,
    fig18_allreduce_rounds,
    races_audit,
    theorem1_waves,
)

_QUICK_TREE = TreeParams(b0=4, max_depth=6, seed=19)

EXPERIMENTS = {
    "fig05": (lambda quick: fig05_barrier_failure()),
    "fig12": (lambda quick: fig12_cofence_micro(
        cores=(4, 8) if quick else (8, 16, 32, 64),
        iterations=10 if quick else 50)),
    "fig13": (lambda quick: fig13_randomaccess_scaling(
        cores=(2, 4) if quick else (2, 4, 8, 16, 32),
        updates_per_image=32 if quick else 128)),
    "fig14": (lambda quick: fig14_bunch_size(
        cores=(4,) if quick else (8, 32),
        bunch_sizes=(4, 16, 64) if quick else (4, 8, 16, 32, 64, 128, 256),
        updates_per_image=64 if quick else 256)),
    "fig16": (lambda quick: fig16_uts_load_balance(
        cores=(4, 8) if quick else (8, 16, 32),
        tree=_QUICK_TREE if quick else None)),
    "fig17": (lambda quick: fig17_uts_efficiency(
        cores=(2, 4) if quick else (2, 4, 8, 16, 32, 64),
        tree=_QUICK_TREE if quick else None)),
    "fig18": (lambda quick: fig18_allreduce_rounds(
        cores=(4, 8) if quick else (8, 16, 32, 64),
        tree=_QUICK_TREE if quick else None)),
    "theorem1": (lambda quick: theorem1_waves(
        chain_lengths=(1, 2) if quick else (1, 2, 4, 8),
        n_images=4 if quick else 8)),
    "detectors": (lambda quick: ablation_detectors(
        n_images=4 if quick else 8,
        tree=_QUICK_TREE if quick else None)),
    "radix": (lambda quick: ablation_tree_radix(
        radixes=(2, 4) if quick else (2, 4, 8),
        n_images=8 if quick else 32,
        repeats=3 if quick else 20)),
    "steal_chunk": (lambda quick: ablation_steal_chunk(
        medium_sizes=(80, 256) if quick else (80, 256, 800),
        n_images=4 if quick else 16,
        tree=_QUICK_TREE if quick else None)),
    "chaos": (lambda quick: chaos_resilience(
        drop_rates=(0.0, 0.05) if quick else (0.0, 0.02, 0.05, 0.1),
        n_images=4 if quick else 8,
        tree=_QUICK_TREE if quick else None,
        updates_per_image=16 if quick else 64)),
    "crash": (lambda quick: crash_recovery(
        n_images=4,
        tree=_QUICK_TREE if quick else None)),
    "grayfail": (lambda quick: grayfail_detectors(
        n_images=4 if quick else 6,
        slices=60 if quick else 100)),
    "explore": (lambda quick: explore_search(
        budget=150 if quick else 500,
        rounds=2 if quick else 4,
        minimize_budget=60 if quick else 200)),
    "fuzz": (lambda quick: fuzz_service(
        rw_budget=1500 if quick else 6000,
        fuzz_budget=400 if quick else 1500,
        seeds=(0,) if quick else (0, 1, 2, 3))),
    "races": (lambda quick: races_audit(
        n_images=4 if quick else 8,
        tree=_QUICK_TREE if quick else None,
        iterations=10 if quick else 50,
        updates_per_image=16 if quick else 32)),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness", description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        choices=[[], *EXPERIMENTS],
                        help="subset to run (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny problem sizes for a fast pass")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    names = args.experiments or list(EXPERIMENTS)
    buffer = io.StringIO()
    original_stdout = sys.stdout

    class Tee:
        def write(self, text):
            original_stdout.write(text)
            buffer.write(text)

        def flush(self):
            original_stdout.flush()

    with contextlib.redirect_stdout(Tee()):
        for name in names:
            EXPERIMENTS[name](args.quick)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(buffer.getvalue())
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
