"""One runner per figure of the paper's evaluation (§IV).

Every runner returns a plain dict of results *and* prints a table with
the same rows/series the paper's figure shows.  Problem sizes are scaled
from the paper's 4K-32K-core Cray runs to simulation scale (see
DESIGN.md §2); the *shape* of each result — who wins, by what factor,
where the curve bends — is the reproduction target, recorded against the
paper's numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams
from repro.runtime.program import run_spmd
from repro.apps.producer_consumer import PCConfig, run_producer_consumer
from repro.apps.randomaccess import RAConfig, run_randomaccess
from repro.apps.uts import (
    TreeParams,
    UTSConfig,
    run_uts,
    sequential_tree_size,
)
from repro.harness.reporting import Table, format_seconds


# --------------------------------------------------------------------- #
# Fig. 5 — why a barrier cannot detect termination
# --------------------------------------------------------------------- #

def fig05_barrier_failure(quiet: bool = False) -> dict:
    """Reproduce the Fig. 5 scenario: p ships f1 to q, f1 ships f2 to r.
    With the naive barrier 'finish', r exits before f2 lands; with the
    epoch detector nobody exits early."""
    outcomes = {}
    for detector in ("barrier", "epoch"):
        f2_done: list[float] = []

        def f2(img):
            yield from img.compute(1e-6)
            f2_done.append(img.now)

        def f1(img):
            yield from img.compute(5e-5)
            yield from img.spawn(f2, 2)

        def kernel(img, det):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(f1, 1)
            yield from img.finish_end(detector=det)
            return img.now

        _m, exits = run_spmd(kernel, 3, args=(detector,))
        outcomes[detector] = {
            "exit_of_r": exits[2],
            "f2_completed_at": f2_done[0] if f2_done else None,
            "sound": bool(f2_done) and exits[2] >= f2_done[0],
        }

    if not quiet:
        table = Table("Fig. 5 — barrier-based termination vs finish "
                      "(p ships f1 to q; f1 ships f2 to r)",
                      ["detector", "r exits at", "f2 completes at",
                       "sound?"])
        for det, o in outcomes.items():
            table.add_row([det, format_seconds(o["exit_of_r"]),
                           format_seconds(o["f2_completed_at"]),
                           "yes" if o["sound"] else "NO (exited early)"])
        table.print()
    return outcomes


# --------------------------------------------------------------------- #
# Fig. 12 — the cofence micro-benchmark
# --------------------------------------------------------------------- #

def fig12_cofence_micro(cores: Sequence[int] = (8, 16, 32, 64),
                        iterations: int = 50,
                        quiet: bool = False) -> dict:
    """copy_async completed by finish vs events vs cofence, across team
    sizes.  Paper: 128-1024 cores, 10^6 iterations; scaled here."""
    results: dict[str, dict[int, float]] = {
        "finish": {}, "events": {}, "cofence": {}}
    for n in cores:
        for variant in results:
            r = run_producer_consumer(
                n, PCConfig(variant=variant, iterations=iterations))
            results[variant][n] = r.sim_time

    if not quiet:
        table = Table(
            f"Fig. 12 — producer-consumer micro-benchmark "
            f"({iterations} rounds of 5 x 80B copy_async)",
            ["cores"] + [f"w/ {v}" for v in results],
        )
        for n in cores:
            table.add_row([n] + [format_seconds(results[v][n])
                                 for v in results])
        table.print()
    return results


# --------------------------------------------------------------------- #
# Fig. 13 — RandomAccess scaling: get-update-put vs function shipping
# --------------------------------------------------------------------- #

def fig13_randomaccess_scaling(cores: Sequence[int] = (2, 4, 8, 16, 32),
                               updates_per_image: int = 128,
                               log2_local_table: int = 10,
                               finish_granularities: Sequence[int] = (2, 4, 8),
                               quiet: bool = False) -> dict:
    """Execution time vs cores for the reference get-update-put variant
    and function shipping with several finish-invocation counts.

    The paper groups 2048/1024/512 updates per finish so that
    2K/4K/8K finish instances run over a 2^22-entry table; here the
    ``finish_granularities`` are the number of finish blocks per image.
    """
    results: dict[str, dict[int, float]] = {"get-update-put": {}}
    for g in finish_granularities:
        results[f"FS w/ {g} finish/img"] = {}

    for n in cores:
        r = run_randomaccess(n, RAConfig(
            variant="get-update-put",
            updates_per_image=updates_per_image,
            log2_local_table=log2_local_table))
        results["get-update-put"][n] = r.sim_time
        for g in finish_granularities:
            bunch = max(1, updates_per_image // g)
            r = run_randomaccess(n, RAConfig(
                variant="function-shipping",
                updates_per_image=updates_per_image,
                log2_local_table=log2_local_table,
                bunch_size=bunch))
            results[f"FS w/ {g} finish/img"][n] = r.sim_time

    if not quiet:
        table = Table(
            f"Fig. 13 — RandomAccess ({updates_per_image} updates/image, "
            f"2^{log2_local_table} words/image)",
            ["cores"] + list(results),
        )
        for n in cores:
            table.add_row([n] + [format_seconds(results[v][n])
                                 for v in results])
        table.print()
    return results


# --------------------------------------------------------------------- #
# Fig. 14 — RandomAccess bunch-size sweep (flow-control anomaly)
# --------------------------------------------------------------------- #

def fig14_bunch_size(cores: Sequence[int] = (8, 32),
                     bunch_sizes: Sequence[int] = (4, 8, 16, 32, 64, 128,
                                                   256),
                     updates_per_image: int = 256,
                     log2_local_table: int = 10,
                     flow_credits: Optional[int] = 8,
                     quiet: bool = False) -> dict:
    """Function-shipping RandomAccess across bunch sizes.

    With GASNet-style source-token flow control, time falls steeply as
    bunches grow (finish amortizes), flattens, and *rises* again once
    bunches outlive the credit pool and the sender sits in ever-longer
    retry runs — the paper's anomaly beyond bunch size 256.  Pass
    ``flow_credits=None`` for the ablation without flow control (the
    rise disappears)."""
    results: dict[int, dict[int, float]] = {n: {} for n in cores}
    for n in cores:
        params = MachineParams.uniform(
            n, flow_credits=flow_credits, flow_credit_scope="source",
            flow_stall_penalty=1.2e-7, ack_latency_factor=2.0)
        for bunch in bunch_sizes:
            r = run_randomaccess(n, RAConfig(
                variant="function-shipping",
                updates_per_image=updates_per_image,
                log2_local_table=log2_local_table,
                bunch_size=bunch), params=params)
            results[n][bunch] = r.sim_time

    if not quiet:
        table = Table(
            f"Fig. 14 — RandomAccess FS vs bunch size "
            f"({updates_per_image} updates/image, flow credits="
            f"{flow_credits})",
            ["bunch size"] + [f"{n} cores" for n in cores],
        )
        for bunch in bunch_sizes:
            table.add_row([bunch] + [format_seconds(results[n][bunch])
                                     for n in cores])
        table.print()
    return results


# --------------------------------------------------------------------- #
# Fig. 16 — UTS load balance
# --------------------------------------------------------------------- #

def fig16_uts_load_balance(cores: Sequence[int] = (8, 16, 32),
                           tree: Optional[TreeParams] = None,
                           node_cost: float = 5e-7,
                           quiet: bool = False) -> dict:
    """Relative per-image work fraction (paper: 0.989-1.008x at 2048
    cores widening to 0.980-1.037x at 8192)."""
    tree = tree if tree is not None else TreeParams(b0=4, max_depth=8,
                                                    seed=19)
    results = {}
    for n in cores:
        r = run_uts(n, UTSConfig(tree=tree, node_cost=node_cost))
        fractions = np.array(r.nodes_per_image) / (r.total_nodes / n)
        results[n] = {
            "fractions": np.sort(fractions).tolist(),
            "min": float(fractions.min()),
            "max": float(fractions.max()),
        }

    if not quiet:
        table = Table(
            "Fig. 16 — UTS load balance (relative fraction of work)",
            ["cores", "min", "max", "spread"],
        )
        for n in cores:
            lo, hi = results[n]["min"], results[n]["max"]
            table.add_row([n, f"{lo:.3f}", f"{hi:.3f}", f"{hi - lo:.3f}"])
        table.print()
    return results


# --------------------------------------------------------------------- #
# Fig. 17 — UTS parallel efficiency
# --------------------------------------------------------------------- #

def fig17_uts_efficiency(cores: Sequence[int] = (2, 4, 8, 16, 32, 64),
                         tree: Optional[TreeParams] = None,
                         node_cost: float = 5e-7,
                         quiet: bool = False) -> dict:
    """Parallel efficiency T1 / (p * Tp) (paper: 0.74-0.80 from 256 to
    32K cores)."""
    tree = tree if tree is not None else TreeParams(b0=4, max_depth=8,
                                                    seed=19)
    t1 = sequential_tree_size(tree) * node_cost
    results = {}
    for n in cores:
        r = run_uts(n, UTSConfig(tree=tree, node_cost=node_cost))
        results[n] = t1 / (n * r.sim_time)

    if not quiet:
        table = Table(
            f"Fig. 17 — UTS parallel efficiency "
            f"(geometric tree, {sequential_tree_size(tree)} nodes)",
            ["cores", "efficiency"],
        )
        for n in cores:
            table.add_row([n, f"{results[n]:.2f}"])
        table.print()
    return results


# --------------------------------------------------------------------- #
# Fig. 18 — allreduce rounds of termination detection
# --------------------------------------------------------------------- #

def fig18_allreduce_rounds(cores: Sequence[int] = (8, 16, 32, 64),
                           tree: Optional[TreeParams] = None,
                           node_cost: float = 5e-7,
                           quiet: bool = False) -> dict:
    """Rounds of allreduce the paper's detector uses in UTS vs the
    baselines without the wait precondition (paper: ours is ~50% of its
    baseline).  Two baselines bracket the design space: ``wave_drain``
    keeps the inbox-drain half of the precondition, ``wave_unbounded``
    keeps none; the paper's measurement falls between them — see
    EXPERIMENTS.md."""
    tree = tree if tree is not None else TreeParams(b0=4, max_depth=8,
                                                    seed=19)
    results = {"epoch": {}, "wave_drain": {}, "wave_unbounded": {}}
    for n in cores:
        for det in results:
            r = run_uts(n, UTSConfig(tree=tree, node_cost=node_cost,
                                     detector=det))
            results[det][n] = r.finish_rounds

    if not quiet:
        table = Table(
            "Fig. 18 — rounds of termination detection in UTS",
            ["cores", "our algorithm", "w/o delivery wait",
             "w/o any wait"],
        )
        for n in cores:
            table.add_row([n, results["epoch"][n],
                           results["wave_drain"][n],
                           results["wave_unbounded"][n]])
        table.print()
    return results


# --------------------------------------------------------------------- #
# Theorem 1 — wave bound
# --------------------------------------------------------------------- #

def theorem1_waves(chain_lengths: Sequence[int] = (1, 2, 4, 8),
                   n_images: int = 8, quiet: bool = False) -> dict:
    """Measured allreduce waves vs the L+1 bound of Theorem 1, with a
    spawn chain slow enough that every hop straddles a wave."""

    def hop(img, remaining):
        yield from img.compute(5e-5)
        if remaining > 1:
            yield from img.spawn(hop, (img.team_rank() + 1) % img.nimages,
                                 remaining - 1)

    def kernel(img, length):
        yield from img.finish_begin()
        if img.rank == 0 and length > 0:
            yield from img.spawn(hop, 1, length)
        rounds = yield from img.finish_end()
        return rounds

    results = {}
    for length in chain_lengths:
        _m, rounds = run_spmd(kernel, n_images, args=(length,))
        results[length] = {"waves": rounds[0], "bound": length + 1}

    if not quiet:
        table = Table("Theorem 1 — reduction waves vs the L+1 bound",
                      ["chain length L", "waves used", "bound L+1"])
        for length, row in results.items():
            table.add_row([length, row["waves"], row["bound"]])
        table.print()
    return results


# --------------------------------------------------------------------- #
# Ablations
# --------------------------------------------------------------------- #

def ablation_detectors(n_images: int = 8,
                       tree: Optional[TreeParams] = None,
                       quiet: bool = False) -> dict:
    """All four sound detectors on the same UTS run: rounds/reports,
    wall time, and the centralized scheme's owner traffic."""
    tree = tree if tree is not None else TreeParams(b0=4, max_depth=7,
                                                    seed=19)
    results = {}
    for det in ("epoch", "wave_drain", "wave_unbounded", "four_counter",
                "vector_count"):
        from repro.runtime.program import Machine
        from repro.apps.uts import uts_kernel

        config = UTSConfig(tree=tree, node_cost=5e-7, detector=det)
        machine = Machine(n_images)
        machine.launch(uts_kernel, args=(config,))
        per_image = machine.run()
        results[det] = {
            "rounds": machine.scratch["uts.finish_rounds"],
            "sim_time": machine.sim.now,
            "owner_bytes": machine.stats["term.vector.owner_bytes"],
            "total_nodes": sum(per_image),
        }

    if not quiet:
        table = Table(
            f"Ablation — termination detectors on UTS ({n_images} images)",
            ["detector", "rounds/reports", "time", "owner bytes"],
        )
        for det, row in results.items():
            table.add_row([det, row["rounds"],
                           format_seconds(row["sim_time"]),
                           row["owner_bytes"]])
        table.print()
    return results


def ablation_tree_radix(radixes: Sequence[int] = (2, 4, 8),
                        n_images: int = 32, repeats: int = 20,
                        quiet: bool = False) -> dict:
    """Radix of finish's reduction tree: deeper (radix-2) trees cost more
    latency per wave; wider trees serialize at the parent."""

    def kernel(img, radix):
        img.machine.scratch["finish.allreduce_radix"] = radix
        for _ in range(repeats):
            yield from img.finish_begin()
            yield from img.finish_end()
        return img.now

    results = {}
    for radix in radixes:
        _m, times = run_spmd(kernel, n_images, args=(radix,))
        results[radix] = max(times) / repeats

    if not quiet:
        table = Table(
            f"Ablation — finish allreduce tree radix ({n_images} images, "
            f"mean of {repeats} empty finish blocks)",
            ["radix", "time per finish"],
        )
        for radix, t in results.items():
            table.add_row([radix, format_seconds(t)])
        table.print()
    return results


def ablation_steal_chunk(medium_sizes: Sequence[int] = (80, 256, 800),
                         n_images: int = 16,
                         tree: Optional[TreeParams] = None,
                         quiet: bool = False) -> dict:
    """§IV-C.1a "amount to steal": the AM medium payload cap bounds the
    steal chunk; tiny chunks make stealing unprofitable."""
    from repro.apps.uts import chunk_limit
    from repro.runtime.program import Machine

    tree = tree if tree is not None else TreeParams(b0=4, max_depth=8,
                                                    seed=19)
    results = {}
    for cap in medium_sizes:
        params = MachineParams.uniform(n_images, am_medium_max=cap)
        limit = chunk_limit(Machine(n_images, params=MachineParams.uniform(
            n_images, am_medium_max=cap)))
        r = run_uts(n_images, UTSConfig(tree=tree, node_cost=5e-7),
                    params=params)
        results[cap] = {"chunk": limit, "sim_time": r.sim_time,
                        "steals": r.steals_attempted}

    if not quiet:
        table = Table(
            "Ablation — steal chunk size (AM medium payload cap)",
            ["am_medium_max", "items/steal", "time", "steal attempts"],
        )
        for cap, row in results.items():
            table.add_row([cap, row["chunk"],
                           format_seconds(row["sim_time"]), row["steals"]])
        table.print()
    return results


def chaos_resilience(drop_rates: Sequence[float] = (0.0, 0.02, 0.05, 0.1),
                     n_images: int = 8,
                     tree: Optional[TreeParams] = None,
                     updates_per_image: int = 64,
                     seed: int = 0, quiet: bool = False) -> dict:
    """UTS and RandomAccess on an unreliable network with the reliable
    transport: application results must match the clean-network run at
    every drop rate, with the retransmission traffic as the price.
    """
    tree = tree if tree is not None else TreeParams(b0=4, max_depth=7,
                                                    seed=19)
    uts_config = UTSConfig(tree=tree, node_cost=5e-7)
    ra_config = RAConfig(log2_local_table=8,
                         updates_per_image=updates_per_image)
    expected_nodes = sequential_tree_size(tree)

    results = {}
    for rate in drop_rates:
        faults = (FaultPlan(drop=rate, duplicate=rate / 2, seed=seed)
                  if rate > 0 else None)
        uts = run_uts(n_images, uts_config,
                      params=MachineParams.uniform(n_images, reliable=True),
                      seed=seed, faults=faults)
        faults = (FaultPlan(drop=rate, duplicate=rate / 2, seed=seed)
                  if rate > 0 else None)
        ra = run_randomaccess(n_images, ra_config,
                              params=MachineParams.uniform(n_images,
                                                           reliable=True),
                              seed=seed, verify=True, faults=faults)
        results[rate] = {
            "uts_ok": uts.total_nodes == expected_nodes,
            "uts_time": uts.sim_time,
            "ra_ok": ra.errors == 0,
            "ra_time": ra.sim_time,
            "retransmits": uts.retransmits + ra.retransmits,
            "drops": uts.drops + ra.drops,
            "dups": uts.dups + ra.dups,
        }

    if not quiet:
        table = Table(
            f"Chaos — UTS + RandomAccess under injected faults "
            f"({n_images} images, reliable transport)",
            ["drop rate", "UTS ok", "RA ok", "retransmits", "drops",
             "dups", "UTS time", "RA time"],
        )
        for rate, row in results.items():
            table.add_row([
                rate,
                "yes" if row["uts_ok"] else "NO",
                "yes" if row["ra_ok"] else "NO",
                row["retransmits"], row["drops"], row["dups"],
                format_seconds(row["uts_time"]),
                format_seconds(row["ra_time"]),
            ])
        table.print()
    return results


# --------------------------------------------------------------------- #
# Gray failures — phi-accrual vs fixed-timeout detection (DESIGN §12)
# --------------------------------------------------------------------- #

def grayfail_detectors(n_images: int = 6, slices: int = 100,
                       slice_cost: float = 2e-5,
                       straggle_factor: float = 12.0,
                       crash_time: float = 8e-4,
                       seed: int = 0, quiet: bool = False) -> dict:
    """Detector quality under gray failures: the adaptive phi-accrual
    rule against the fixed timeout, on the same chaos.

    Three scenarios per detector, all on a sliced-compute kernel whose
    only traffic is the heartbeat stream:

    - *straggler*: image 1 degrades to ``straggle_factor`` x service
      time, stretching its heartbeat cadence past the suspicion
      timeout.  The fixed rule flaps (one false suspicion per slow
      heartbeat gap); phi adapts once the slow inter-arrivals enter its
      window and stops suspecting — the false-suspicion count is the
      headline number.
    - *straggler + real crash*: a different image fail-stops.  Both
      rules must notice at (near-)identical latency — adaptivity is
      only worth having if it does not slow real detection.
    - *partition, healing*: both sides go silent for less than
      ``confirm_timeout``.  Neither rule can see through a severed link
      (silence is silence), so both flap equally; what matters is that
      the time-based confirmation floor holds — zero confirmations,
      every suspicion retracted on heal.
    """
    cfg_kwargs = dict(period=2e-5, timeout=5e-5, confirm_timeout=1e-3,
                      phi_suspect=12.0, window=100)

    def kernel(img, n_slices, cost):
        for _ in range(n_slices):
            yield from img.compute(cost)

    def measure(detector: str, plan: FaultPlan) -> dict:
        from repro.runtime.failure import FailureConfig

        machine, _ = run_spmd(
            kernel, n_images, args=(slices, slice_cost), seed=seed,
            faults=plan,
            failure_detection=FailureConfig(detector=detector,
                                            **cfg_kwargs))
        service = machine.failure
        tts = service.time_to_unsuspect
        return {
            "false_suspicions": machine.stats["fail.false_suspected"],
            "unsuspected": machine.stats["fail.unsuspected"],
            "confirmed": machine.stats["fail.confirmed"],
            "suspect_latency": (service.suspect_latency[0]
                                if service.suspect_latency else None),
            "mean_time_to_unsuspect": (sum(tts) / len(tts) if tts
                                       else None),
        }

    half = n_images // 2
    results: dict = {}
    for det in ("timeout", "phi"):
        results[det] = {
            "straggler": measure(det, FaultPlan().straggle(
                1, straggle_factor, degrade_at=2e-4)),
            "crash": measure(det, FaultPlan()
                             .straggle(1, straggle_factor, degrade_at=2e-4)
                             .crash_at(n_images - 1, crash_time)),
            "partition": measure(det, FaultPlan().partition(
                [list(range(half)), list(range(half, n_images))],
                at=4e-4, heal_at=7e-4)),
        }

    t, p = results["timeout"], results["phi"]
    period = cfg_kwargs["period"]
    results["ok"] = (
        p["straggler"]["false_suspicions"]
        < t["straggler"]["false_suspicions"]
        and t["crash"]["suspect_latency"] is not None
        and p["crash"]["suspect_latency"] is not None
        and abs(t["crash"]["suspect_latency"]
                - p["crash"]["suspect_latency"]) <= 2 * period
        and all(results[d][s]["confirmed"] == 0
                for d in ("timeout", "phi")
                for s in ("straggler", "partition")))

    if not quiet:
        table = Table(
            f"Gray failures — phi-accrual vs fixed timeout "
            f"({n_images} images, straggler x{straggle_factor:g}, "
            f"healing partition)",
            ["detector", "scenario", "false suspicions", "unsuspected",
             "confirmed", "crash latency", "mean heal time"],
        )
        for det in ("timeout", "phi"):
            for scenario in ("straggler", "crash", "partition"):
                row = results[det][scenario]
                table.add_row([
                    det, scenario,
                    row["false_suspicions"], row["unsuspected"],
                    row["confirmed"],
                    (format_seconds(row["suspect_latency"])
                     if row["suspect_latency"] is not None else "-"),
                    (format_seconds(row["mean_time_to_unsuspect"])
                     if row["mean_time_to_unsuspect"] is not None else "-"),
                ])
        table.print()
        print("verdict:", "OK — phi strictly fewer false suspicions at "
              "equal crash-detection latency; zero false confirmations"
              if results["ok"] else "FAILED (see table)")

    assert results["ok"], (
        "grayfail detector comparison failed: "
        f"timeout={t['straggler']['false_suspicions']} false suspicions, "
        f"phi={p['straggler']['false_suspicions']}; crash latencies "
        f"{t['crash']['suspect_latency']} vs {p['crash']['suspect_latency']}")
    return results


# --------------------------------------------------------------------- #
# Race audit — the happens-before detector over the paper apps
# --------------------------------------------------------------------- #

def _racy_producer(img, iterations: int):
    """The Fig. 11 producer with its cofence removed — the audit's
    positive control: the buffer is overwritten while copies may still
    be reading it, and the detector must say so."""
    src = np.zeros(16, dtype=np.uint8)
    inbuf = img.machine.coarray_by_name("races_inbuf")
    yield from img.finish_begin()
    if img.rank == 0:
        for _ in range(iterations):
            img.copy_async(inbuf.ref(1), src)
            img.local_write(src, (src + 1) % 7)  # missing cofence
    yield from img.finish_end()


def explore_search(budget: int = 500, rounds: int = 4,
                   minimize_budget: int = 200,
                   artifact: Optional[str] = None,
                   quiet: bool = False) -> dict:
    """Schedule-space exploration demo (DESIGN.md §10): every strategy
    must find the seeded flag-before-data bug in
    :mod:`repro.apps.ordering_bug` within ``budget`` schedules, the
    minimized schedule must shrink to a handful of non-default choices,
    and its strict replay must reproduce the identical failure.

    The bug is invisible to every other oracle run in this harness —
    the baseline schedule always delivers data before the flag — which
    is the point: only controlled-schedule search surfaces it.
    ``artifact`` names a file to save the first minimized repro
    schedule to (the explorer's repro artifact).
    """
    from repro.apps.ordering_bug import (
        OrderingBugConfig,
        make_ordering_bug_target,
        run_ordering_bug,
    )
    from repro.explore import (
        DFSStrategy,
        Explorer,
        PCTStrategy,
        RandomWalkStrategy,
        check_replay_determinism,
    )

    config = OrderingBugConfig(rounds=rounds)
    baseline = run_ordering_bug(config=config)
    target = make_ordering_bug_target(config=config)
    explorer = Explorer(target, budget=budget,
                        minimize_budget=minimize_budget)

    results: dict = {"baseline_ok": baseline.ok}
    saved = None
    for strategy in (RandomWalkStrategy(seed=1), PCTStrategy(seed=2),
                     DFSStrategy(max_depth=25)):
        report = explorer.run_strategy(strategy)
        row = report.to_json()
        if report.found:
            row["replay_deterministic"] = check_replay_determinism(
                target, report.minimized)
            if artifact is not None and saved is None:
                report.minimized.save(artifact)
                saved = artifact
        results[report.strategy] = row
    results["artifact"] = saved
    results["ok"] = baseline.ok and all(
        row.get("found") and row.get("replay_deterministic")
        for name, row in results.items()
        if isinstance(row, dict))

    if not quiet:
        table = Table(
            f"Schedule exploration — seeded ordering bug "
            f"({rounds} rounds, budget {budget} schedules/strategy)",
            ["strategy", "found", "schedules", "minimized (non-default)",
             "replay"],
        )
        for name, row in results.items():
            if not isinstance(row, dict):
                continue
            table.add_row([
                name,
                f"run #{row['found_at']}" if row["found"] else "NO",
                row["schedules_run"],
                (f"{row['minimized_nonzero']} of {row['minimized_len']}"
                 if row["found"] else "-"),
                ("identical" if row.get("replay_deterministic")
                 else "DIVERGED") if row["found"] else "-",
            ])
        table.print()
        print(f"baseline schedule: {'clean' if baseline.ok else 'FAILED'}"
              f" (the bug needs exploration to surface)")
        if saved:
            print(f"minimized repro schedule written to {saved}")
    return results


def races_audit(n_images: int = 4, tree: Optional[TreeParams] = None,
                iterations: int = 50, updates_per_image: int = 32,
                seed: int = 0, quiet: bool = False) -> dict:
    """Happens-before race audit: the three paper applications under
    their default synchronization must be race-free, and a deliberately
    broken producer (no cofence) must be flagged.

    ``n_images`` must be a power of two (RandomAccess's constraint).
    """
    tree = tree if tree is not None else TreeParams(b0=4, max_depth=6,
                                                    seed=19)
    results = {}

    uts = run_uts(n_images, UTSConfig(tree=tree), seed=seed, racecheck=True)
    results["uts"] = {"races": uts.races, "nodes": uts.total_nodes}

    ra = run_randomaccess(
        n_images,
        RAConfig(log2_local_table=8, updates_per_image=updates_per_image),
        seed=seed, verify=True, racecheck=True)
    results["randomaccess"] = {"races": ra.races, "errors": ra.errors}

    pc = run_producer_consumer(n_images, PCConfig(iterations=iterations),
                               seed=seed, racecheck=True)
    results["producer_consumer"] = {"races": pc.races}

    def setup(machine):
        machine.coarray("races_inbuf", shape=16, dtype=np.uint8)

    machine, _ = run_spmd(_racy_producer, 2, args=(iterations,),
                          setup=setup, seed=seed, racecheck=True)
    control = machine.racecheck
    results["control"] = {
        "races": control.race_count,
        "example": str(control.races[0]) if control.races else None,
    }
    results["ok"] = (uts.races == 0 and ra.races == 0 and pc.races == 0
                     and control.race_count > 0)

    if not quiet:
        table = Table(
            f"Race audit — vector-clock happens-before detector "
            f"({n_images} images)",
            ["program", "sync discipline", "races", "verdict"],
        )
        table.add_row(["UTS", "finish + lifelines", uts.races,
                       "clean" if uts.races == 0 else "RACY"])
        table.add_row(["RandomAccess", "function shipping", ra.races,
                       "clean" if ra.races == 0 else "RACY"])
        table.add_row(["producer-consumer", "cofence", pc.races,
                       "clean" if pc.races == 0 else "RACY"])
        table.add_row(["control (no cofence)", "none — seeded bug",
                       control.race_count,
                       "RACY (expected)" if control.race_count else
                       "MISSED"])
        table.print()
        if control.races:
            print("control finding:", control.races[0])
    return results


# --------------------------------------------------------------------- #
# Crash — fail-stop image failure, detection, and recovery (DESIGN §11)
# --------------------------------------------------------------------- #

def crash_recovery(n_images: int = 4,
                   tree: Optional[TreeParams] = None,
                   crash_image: int = 2,
                   crash_time: float = 1e-5,
                   seed: int = 42, quiet: bool = False) -> dict:
    """UTS with a fail-stop crash injected mid initial-work-sharing.

    Three runs: clean (the reference count), crash with recovery (must
    reproduce the exact sequential tree size — the lost shipped
    functions re-execute on their surviving spawners), and crash in
    report-only mode (must raise a structured ImageFailureError naming
    the dead image instead of hanging).
    """
    from repro.runtime.failure import FailureConfig, ImageFailureError

    tree = tree if tree is not None else TreeParams(b0=4, max_depth=8,
                                                    seed=19)
    config = UTSConfig(tree=tree)
    expected = sequential_tree_size(tree)

    clean = run_uts(n_images, config, seed=seed)

    recovered = run_uts(
        n_images, config, seed=seed,
        faults=FaultPlan().crash_at(crash_image, crash_time),
        failure_detection=FailureConfig(recover=True))

    report_error = None
    try:
        run_uts(n_images, config, seed=seed,
                faults=FaultPlan().crash_at(crash_image, crash_time),
                failure_detection=FailureConfig())
    except ImageFailureError as exc:
        report_error = exc

    results = {
        "expected_nodes": expected,
        "clean_ok": clean.total_nodes == expected,
        "recovered_ok": recovered.total_nodes == expected,
        "recovered_nodes": recovered.total_nodes,
        "failed_images": recovered.failed_images,
        "recovered_spawns": recovered.recovered_spawns,
        "recovered_time": recovered.sim_time,
        "report_raised": report_error is not None,
        "report_dead": tuple(report_error.dead) if report_error else (),
        "report_detected_at": (report_error.detected_at
                               if report_error else None),
    }

    if not quiet:
        table = Table(
            f"Crash — UTS with image {crash_image} fail-stopping at "
            f"t={crash_time:g}s ({n_images} images)",
            ["mode", "nodes", "correct", "dead", "re-executed", "time"],
        )
        table.add_row(["clean", clean.total_nodes,
                       "yes" if results["clean_ok"] else "NO", "-", 0,
                       format_seconds(clean.sim_time)])
        table.add_row(["crash + recover", recovered.total_nodes,
                       "yes" if results["recovered_ok"] else "NO",
                       list(recovered.failed_images),
                       recovered.recovered_spawns,
                       format_seconds(recovered.sim_time)])
        if report_error is not None:
            table.add_row(["crash, report-only",
                           "ImageFailureError",
                           "yes", list(report_error.dead), 0,
                           format_seconds(report_error.detected_at)])
        else:
            table.add_row(["crash, report-only", "NO ERROR RAISED", "NO",
                           "-", 0, "-"])
        table.print()

    assert results["clean_ok"], (
        f"clean UTS run lost nodes: {clean.total_nodes} != {expected}")
    assert results["recovered_ok"], (
        f"recovery missed the tree count: {recovered.total_nodes} != "
        f"{expected} (dead={recovered.failed_images})")
    assert results["report_raised"], (
        "report-only crash run finished without ImageFailureError")
    assert crash_image in results["report_dead"], (
        f"ImageFailureError does not name image {crash_image}: "
        f"{results['report_dead']}")
    return results


# --------------------------------------------------------------------- #
# Fuzzing service — coverage-guided search vs blind random walk
# --------------------------------------------------------------------- #

def fuzz_service(rw_budget: int = 6000, fuzz_budget: int = 1500,
                 workers: int = 0, seeds: Sequence[int] = (0, 1, 2, 3),
                 lag_steps: int = 4,
                 findings_dir: Optional[str] = None,
                 quiet: bool = False) -> dict:
    """Chaos-fuzzing acceptance experiment (DESIGN.md §15): the
    coverage-guided service must find both seeded bugs — the ordering
    bug and the crash-recovery double-count — with an order of
    magnitude fewer schedules than a single-process random walk given
    the same seeds and the same search space.

    The recovery bug is the stress case: its crash menu composes with
    per-message delivery lags through one recorded choice stream, and
    the failing conjunction (the one non-decoy crash time *and* every
    completion post lagged past it) is staged — each partially-lagged
    schedule strands one more work item and re-executes one more
    recovery spawn, visible to the coverage map as new per-key record
    counts long before the invariant trips.  Random walk has to roll
    the whole conjunction at once; the corpus climbs it.

    ``workers=0`` runs the service inline (deterministic);
    ``workers=N`` exercises the multiprocessing pool.  ``lag_steps``
    sets the delivery-lag quantization both searchers face.
    """
    from repro.explore import Explorer, RandomWalkStrategy
    from repro.explore.fuzz import FuzzConfig, FuzzService, TargetSpec

    targets = {
        "ordering_bug": TargetSpec(
            "repro.apps.ordering_bug:make_ordering_bug_target"),
        "recovery_bug": TargetSpec(
            "repro.apps.recovery_bug:make_recovery_bug_target"),
    }

    results: dict = {"targets": {}, "seeds": list(seeds),
                     "workers": workers}
    totals = {"rw": 0, "fuzz": 0}
    for name, spec in targets.items():
        target = spec.build()
        rows = []
        for seed in seeds:
            explorer = Explorer(target, budget=rw_budget, minimize=False)
            rw = explorer.run_strategy(
                RandomWalkStrategy(seed=seed, lag_steps=lag_steps))
            rw_spent = (rw.found_at + 1 if rw.found else rw_budget)

            service = FuzzService(
                spec,
                FuzzConfig(budget=fuzz_budget, workers=workers,
                           seed=seed, lag_steps=lag_steps,
                           max_findings=1),
                findings_dir=findings_dir)
            report = service.run()
            fuzz_spent = (report.first_find_at
                          if report.first_find_at is not None
                          else fuzz_budget)
            rows.append({
                "seed": seed,
                "rw_found": rw.found, "rw_spent": rw_spent,
                "fuzz_found": report.found, "fuzz_spent": fuzz_spent,
                "fuzz_verified": all(f.verified
                                     for f in report.findings),
                "corpus": report.corpus_size,
                "coverage": report.coverage_features,
                "schedules_per_sec": report.schedules_per_sec,
            })
            totals["rw"] += rw_spent
            totals["fuzz"] += fuzz_spent
        results["targets"][name] = rows

    results["total_rw"] = totals["rw"]
    results["total_fuzz"] = totals["fuzz"]
    results["speedup"] = (totals["rw"] / totals["fuzz"]
                          if totals["fuzz"] else float("inf"))
    results["ok"] = all(
        row["rw_found"] is not None and row["fuzz_found"]
        and row["fuzz_verified"]
        for rows in results["targets"].values() for row in rows)

    if not quiet:
        table = Table(
            f"Chaos fuzzing — schedules to first finding, random walk "
            f"vs coverage-guided (lag_steps={lag_steps}, "
            f"workers={workers})",
            ["target", "seed", "random walk", "fuzz service",
             "per-seed ratio"],
        )
        for name, rows in results["targets"].items():
            for row in rows:
                rw_s = (str(row["rw_spent"]) if row["rw_found"]
                        else f">{row['rw_spent']}")
                fz_s = (str(row["fuzz_spent"]) if row["fuzz_found"]
                        else f">{row['fuzz_spent']}")
                ratio = row["rw_spent"] / max(1, row["fuzz_spent"])
                table.add_row([name, row["seed"], rw_s, fz_s,
                               f"{ratio:.1f}x"])
        table.print()
        print(f"totals: random walk {totals['rw']} vs fuzz "
              f"{totals['fuzz']} schedules -> "
              f"{results['speedup']:.1f}x fewer; findings "
              f"{'all verified' if results['ok'] else 'INCOMPLETE'}")
    return results
