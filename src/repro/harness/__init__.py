"""Experiment harness: one runner per table/figure of the paper.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
recorded paper-vs-measured results.
"""

from repro.harness.reporting import Table, format_seconds
from repro.harness.experiments import (
    fig05_barrier_failure,
    fig12_cofence_micro,
    fig13_randomaccess_scaling,
    fig14_bunch_size,
    fig16_uts_load_balance,
    fig17_uts_efficiency,
    fig18_allreduce_rounds,
    theorem1_waves,
    ablation_detectors,
    ablation_tree_radix,
    ablation_steal_chunk,
    chaos_resilience,
    crash_recovery,
    explore_search,
    fuzz_service,
    grayfail_detectors,
    races_audit,
)

__all__ = [
    "explore_search",
    "fuzz_service",
    "Table",
    "format_seconds",
    "fig05_barrier_failure",
    "fig12_cofence_micro",
    "fig13_randomaccess_scaling",
    "fig14_bunch_size",
    "fig16_uts_load_balance",
    "fig17_uts_efficiency",
    "fig18_allreduce_rounds",
    "theorem1_waves",
    "ablation_detectors",
    "ablation_tree_radix",
    "ablation_steal_chunk",
    "chaos_resilience",
    "crash_recovery",
    "grayfail_detectors",
    "races_audit",
]
