"""Plain-text reporting for experiment results.

Every figure runner prints the same rows/series the paper's plot shows,
via :class:`Table`.  Keeping this purely textual keeps the harness free
of plotting dependencies; the numbers land in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_seconds(t: float) -> str:
    """Human-scale formatting for simulated durations."""
    if t == 0:
        return "0"
    if t >= 1.0:
        return f"{t:.3f} s"
    if t >= 1e-3:
        return f"{t * 1e3:.3f} ms"
    return f"{t * 1e6:.2f} us"


class Table:
    """A fixed-column text table.

    >>> t = Table("demo", ["p", "time"])
    >>> t.add_row([4, "1.0 ms"])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo
    ...
    """

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        cells = [str(c) for c in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()
