"""Vector-clock happens-before race detection for the CAF 2.0 memory
model (DESIGN.md §8).

The paper's relaxed memory model (§III) leaves asynchronous copies,
coarray accesses and event notify/wait unordered unless a synchronization
construct orders them.  This module checks that programs actually supply
the ordering they rely on, in the style of dynamic data-race sanitizers:

- every *activation* (an image's main program, or one shipped-function
  execution) carries a vector clock over abstract components;
- every asynchronous operation gets a fresh component with two ticks:
  tick 1 labels its *local data* effects (what ``cofence`` waits for),
  tick 2 its *global* effect (what ``finish``, handle waits and event
  deliveries guarantee);
- the paper's ordering edges join clocks:

  ========================  =============================================
  edge                      join
  ========================  =============================================
  event_notify → event_wait release/acquire through a per-counter clock
  cofence                   the local-data tick of every pending op the
                            DOWNWARD class filter constrains
  finish entry/exit         all members' clocks (and every implicit op's
                            global tick, and every shipped activation's
                            final clock) meet in a per-frame clock
  spawn → shipped body      the child activation starts from the spawn's
                            initiation clock
  explicit-handle waits     the handle's local/global tick
  blocking collectives      contribute-at-entry / join-at-exit clocks
  lock release → acquire    a per-lock-word clock
  ========================  =============================================

- instrumented accesses (copy endpoints, blocking get/put, the lang
  interpreter's local coarray accesses, and ``Image.local_read`` /
  ``Image.local_write``) land in per-location shadow state; two
  overlapping accesses, at least one a write, with *incomparable* clocks
  are reported as a race with both sites named.

Precision notes (all err toward the sound side for the false-positive
criterion — extra edges can only hide races, never invent them):

- operations issued by one activation are *processor consistent*: each
  op's base clock joins the global tick of every implicit op the
  activation started earlier, matching the simulator's in-order per-link
  delivery under the reliable transport.  The activation's own direct
  accesses stay unordered with in-flight op effects, which is exactly
  what makes a missing ``cofence`` detectable.
- event clocks accumulate every release; a waiter consuming N of M posts
  joins all M (counting events are not split per post).
- consecutive implicit, unpredicated copies of the same class set share
  one clock component (they are joined all-or-none by every ordering
  construct, so separate components cannot separate outcomes); the batch
  closes on any direct access, sync join, or other operation.  This
  keeps clock sizes proportional to synchronization activity rather than
  copy count — fan-out loops like the cofence micro-benchmark stay
  near-linear instead of quadratic.
- accesses that bypass the runtime (raw numpy on a coarray section, e.g.
  inside a shipped handler that is atomic by construction) are outside
  the instrumented surface, as with any sanitizer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

import numpy as np

from repro.runtime.coarray import Coarray, CoarrayRef
from repro.runtime.memory_model import may_pass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.program import Machine

try:  # numpy >= 2.0
    from numpy.lib.array_utils import byte_bounds as _byte_bounds
except ImportError:  # pragma: no cover - numpy 1.x
    _byte_bounds = np.byte_bounds


# --------------------------------------------------------------------- #
# Vector clocks (sparse: component id -> tick)
# --------------------------------------------------------------------- #

def vc_join(into: dict, other: dict) -> None:
    """Pointwise max, in place."""
    for k, v in other.items():
        if into.get(k, 0) < v:
            into[k] = v


def vc_leq(a: dict, b: dict) -> bool:
    """a happens-before-or-equals b."""
    for k, v in a.items():
        if v > b.get(k, 0):
            return False
    return True


class OpClock:
    """The clock material of one asynchronous operation: a base clock
    snapshotted at initiation plus a fresh component with two ticks.

    Consecutive implicit copies with the same class set and no
    intervening clock activity share one OpClock (see
    :meth:`RaceDetector.copy_begin`), so the two tick dicts are cached —
    they are identical for every member of the batch."""

    __slots__ = ("oid", "base", "kind", "_vcl", "_vcg")

    def __init__(self, oid: int, base: dict, kind: str):
        self.oid = oid
        self.base = base
        self.kind = kind
        self._vcl = None
        self._vcg = None

    def join_base(self, vc: dict) -> None:
        vc_join(self.base, vc)
        self._vcl = None
        self._vcg = None

    def vc_local(self) -> dict:
        """Labels the op's local-data effects (cofence's guarantee)."""
        if self._vcl is None:
            v = dict(self.base)
            v[self.oid] = 1
            self._vcl = v
        return self._vcl

    def vc_global(self) -> dict:
        """Labels the op's remote/global effects (finish's guarantee)."""
        if self._vcg is None:
            v = dict(self.base)
            v[self.oid] = 2
            self._vcg = v
        return self._vcg


class ThreadClock:
    """Per-activation clock state."""

    __slots__ = ("tid", "name", "rank", "vc", "issued", "fence_ops",
                 "mut", "epoch")

    def __init__(self, tid: int, name: str, rank: int):
        self.tid = tid
        self.name = f"{name}@{rank}"
        self.rank = rank
        self.vc: dict = {tid: 1}
        #: global ticks of started implicit ops (processor consistency +
        #: what event_notify / finish publish on this activation's behalf)
        self.issued: dict = {}
        #: (classes, OpClock) of implicit ops a future cofence may join
        self.fence_ops: list = []
        #: bumped on every clock-relevant activity (release, join, direct
        #: access); an op batch only stays open while this stands still
        self.mut = 0
        #: (classes, mut, OpClock) of the open implicit-copy batch
        self.epoch = None

    def release(self) -> dict:
        """Snapshot the clock for publication, then advance my own
        component so later accesses are not covered by the snapshot."""
        self.mut += 1
        if self.issued:
            # entries the clock already dominates are pure redundancy in
            # every vc ∪ issued publication — drop them so the map stays
            # proportional to the ops in flight, not the ops ever started
            vc = self.vc
            self.issued = {k: v for k, v in self.issued.items()
                           if vc.get(k, 0) < v}
        out = dict(self.vc)
        self.vc[self.tid] += 1
        return out

    def join(self, other: dict) -> None:
        self.mut += 1
        vc_join(self.vc, other)


# --------------------------------------------------------------------- #
# Shadow state
# --------------------------------------------------------------------- #

@dataclass
class AccessSite:
    """One recorded memory access (one side of a race report)."""

    op: str           #: e.g. "copy.put.dest", "local.write", "copy.get.src"
    write: bool
    thread: str       #: activation label, e.g. "main@0" or "fn@3"
    lo: int
    hi: int
    time: float
    vc: dict = field(repr=False)
    #: strong reference pinning a local numpy buffer so its address range
    #: cannot be recycled while the record lives
    pin: Any = field(default=None, repr=False)

    def describe(self) -> str:
        rw = "write" if self.write else "read"
        return (f"{rw} of [{self.lo}:{self.hi}) by {self.thread} "
                f"({self.op}, t={self.time:.3e}s)")


@dataclass
class RaceReport:
    """A pair of conflicting, unordered accesses."""

    location: str
    a: AccessSite
    b: AccessSite
    hint: str

    def __str__(self) -> str:
        return (f"race on {self.location}: {self.a.describe()} <-> "
                f"{self.b.describe()}; {self.hint}")


def _index_range(index: Any, local: np.ndarray) -> tuple[int, int]:
    """Element bounds of an index into a section (conservative bounding
    box for anything fancier than 1-D int/slice indexing)."""
    n = int(local.size)
    if local.ndim != 1:
        return 0, n
    if isinstance(index, (int, np.integer)):
        i = int(index)
        if i < 0:
            i += n
        return i, i + 1
    if isinstance(index, slice):
        lo, hi, step = index.indices(n)
        if step == 1:
            return lo, max(lo, hi)
        return min(lo, hi), max(lo, hi) + 1
    return 0, n


class RaceDetector:
    """Machine-wide detector state; created by ``Machine(racecheck=True)``.

    Every hook is invoked by the runtime only when the machine carries a
    detector, so a disabled run pays exactly one ``is None`` test per
    construct.  The detector never schedules simulation events: enabling
    it cannot perturb timing or results.
    """

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self._components = itertools.count(1)
        self._threads = 0
        #: location key -> live AccessSite records
        self._shadow: dict[tuple, list[AccessSite]] = {}
        self.races: list[RaceReport] = []
        self._reported: set = set()
        self._event_clocks: dict[tuple, dict] = {}
        self._finish_clocks: dict[tuple, dict] = {}
        self._lock_clocks: dict[tuple, dict] = {}
        self._coll_clocks: dict[tuple, dict] = {}
        self._coll_rounds: dict[tuple, int] = {}
        #: (thread, downward, upward, t) annotations of every cofence
        self.fences: list[tuple] = []

    # -- threads --------------------------------------------------------- #

    def thread(self, activation) -> ThreadClock:
        th = activation.rc
        if th is None:
            th = ThreadClock(next(self._components), activation.name,
                             activation.image_state.world_rank)
            activation.rc = th
            self._threads += 1
        return th

    # -- access recording -------------------------------------------------- #

    def _location(self, target: Any, rank: int
                  ) -> tuple[tuple, int, int, Any]:
        if isinstance(target, CoarrayRef):
            local = target.coarray.local_at(target.world_rank)
            lo, hi = _index_range(target.index, local)
            return (("coarray", target.coarray.name, target.world_rank),
                    lo, hi, None)
        if isinstance(target, Coarray):
            local = target.local_at(rank)
            return ("coarray", target.name, rank), 0, int(local.size), None
        if isinstance(target, np.ndarray):
            lo, hi = _byte_bounds(target)
            return ("buffer", rank), int(lo), int(hi), target
        raise TypeError(
            f"cannot locate access target of type {type(target).__name__}")

    def _location_str(self, key: tuple) -> str:
        if key[0] == "coarray":
            return f"coarray {key[1]!r}@img{key[2]}"
        return f"local buffers@img{key[1]}"

    def record_access(self, target: Any, rank: int, write: bool, vc: dict,
                      op: str, thread: ThreadClock) -> None:
        key, lo, hi, pin = self._location(target, rank)
        site = AccessSite(op=op, write=write, thread=thread.name, lo=lo,
                          hi=hi, time=self.machine.sim.now, vc=vc, pin=pin)
        self.machine.stats.incr("race.accesses")
        records = self._shadow.setdefault(key, [])
        keep = []
        for old in records:
            ordered = old.vc is vc or vc_leq(old.vc, vc)
            overlaps = old.hi > lo and hi > old.lo
            if overlaps and (old.write or write) and not ordered:
                self._report(key, old, site)
            redundant = (ordered and old.lo >= lo and old.hi <= hi
                         and (write or not old.write))
            if not redundant:
                keep.append(old)
        keep.append(site)
        self._shadow[key] = keep

    def record_direct(self, activation, target: Any, rank: int,
                      write: bool, op: Optional[str] = None) -> None:
        """A synchronous access performed by the activation itself."""
        th = self.thread(activation)
        # A direct access closes any open implicit-copy batch: a later
        # copy must not share a base snapshotted before this access.
        th.mut += 1
        self.record_access(
            target, rank, write, dict(th.vc),
            op or ("local.write" if write else "local.read"), th)

    def _report(self, key: tuple, old: AccessSite, new: AccessSite) -> None:
        sig = (key, old.op, old.thread, new.op, new.thread)
        if sig in self._reported:
            return
        self._reported.add(sig)
        report = RaceReport(self._location_str(key), old, new,
                            self._hint(old, new))
        self.races.append(report)
        self.machine.stats.incr("race.races")

    @staticmethod
    def _hint(old: AccessSite, new: AccessSite) -> str:
        if old.thread == new.thread:
            return ("both accesses come from the same activation with no "
                    "completion edge between them: a cofence covering the "
                    "operation's class (or waiting its handle) after the "
                    "first access would order them")
        return ("no cross-image edge orders these accesses: an "
                "event_notify/event_wait pair, an enclosing finish, or a "
                "lock would create the missing happens-before edge")

    # -- asynchronous operations ------------------------------------------ #

    def _op_begin(self, activation, kind: str) -> tuple[OpClock, ThreadClock]:
        th = self.thread(activation)
        base = th.release()
        vc_join(base, th.issued)
        return OpClock(next(self._components), base, kind), th

    def copy_begin(self, ctx, op, implicit: bool,
                   predicated: bool = False) -> OpClock:
        """Snapshot clocks at copy initiation (program-order point).

        Consecutive implicit, unpredicated copies with the same class set
        and no intervening clock activity (no sync joins, no direct
        accesses, no other operation kinds) get *one* shared component:
        their bases are identical and every ordering construct that can
        join them — cofence class filters, finish, notify — treats the
        whole batch alike, so per-copy components would only grow the
        clocks without separating any outcome.  (The one coarsening:
        waiting one such copy's handle also covers its batch mates;
        predicated copies always get their own component because their
        base joins the predicate event's clock.)"""
        th = self.thread(ctx.activation)
        if implicit and not predicated and op.pending_op is not None:
            classes = op.pending_op.classes
            ep = th.epoch
            if (ep is not None and ep[0] == classes and ep[1] == th.mut):
                rcop = ep[2]
                op.rc = rcop
                op.pending_op.rc = rcop
                return rcop
        rcop, th = self._op_begin(ctx.activation, "copy")
        op.rc = rcop
        if op.pending_op is not None:
            op.pending_op.rc = rcop
            if implicit:
                th.fence_ops.append((op.pending_op.classes, rcop))
                if not predicated:
                    th.epoch = (op.pending_op.classes, th.mut, rcop)
        return rcop

    def copy_started(self, ctx, rcop: OpClock, implicit: bool, dest, src,
                     pre, src_ev, dest_ev) -> None:
        """The copy actually launches (immediately, or when its predicate
        event fires): finalize its clock, record both endpoint accesses,
        and register its completion-event releases eagerly."""
        th = self.thread(ctx.activation)
        if pre is not None:
            rcop.join_base(self.event_clock(pre))
            # the predicate fires asynchronously: the issued entry below
            # lands mid-stream, so no later copy may batch with a base
            # snapshotted before it
            th.mut += 1
        if implicit:
            th.issued[rcop.oid] = 2
        src_local = src.rank == ctx.rank
        dest_local = dest.rank == ctx.rank
        path = ("local" if src_local and dest_local else
                "put" if src_local else
                "get" if dest_local else "fwd")
        vcl, vcg = rcop.vc_local(), rcop.vc_global()
        # get: all completion points coincide at the initiator, so both
        # endpoints carry the local tick; fwd: the initiator's buffers are
        # untouched and both effects are remote.
        src_vc = vcg if path == "fwd" else vcl
        dest_vc = vcg if path in ("put", "fwd") else vcl
        self._record_endpoint(src, th, f"copy.{path}.src", False, src_vc)
        self._record_endpoint(dest, th, f"copy.{path}.dest", True, dest_vc)
        if src_ev is not None:
            self.event_release(src_ev, src_vc)
        if dest_ev is not None:
            self.event_release(dest_ev, dest_vc)

    def _record_endpoint(self, loc, th: ThreadClock, op: str, write: bool,
                         vc: dict) -> None:
        target = loc.ref if loc.ref is not None else loc.buffer
        self.record_access(target, loc.rank, write, vc, op, th)

    def spawn_begin(self, ctx, op, implicit: bool) -> OpClock:
        rcop, th = self._op_begin(ctx.activation, "spawn")
        op.rc = rcop
        if implicit:
            th.issued[rcop.oid] = 2
        return rcop

    def spawn_registered(self, activation, op) -> None:
        pending = op.pending_op
        pending.rc = op.rc
        self.thread(activation).fence_ops.append((pending.classes, op.rc))

    def activation_begin(self, activation, base_vc: Optional[dict]) -> None:
        """A shipped function starts: inherit the spawn's clock."""
        th = self.thread(activation)
        if base_vc:
            th.join(base_vc)

    def activation_done(self, activation, key: Optional[tuple],
                        event_ref) -> None:
        """A shipped function finishes: publish its final clock to the
        finish frame it is pinned to and/or its completion event."""
        if key is None and event_ref is None:
            return
        th = self.thread(activation)
        vc = th.release()
        vc_join(vc, th.issued)
        if key is not None:
            vc_join(self._finish_clocks.setdefault(key, {}), vc)
        if event_ref is not None:
            self.event_release(event_ref, vc)

    def op_waited(self, activation, op, level: str = "global") -> None:
        """An explicit wait on an AsyncOp handle (get/put/wait_all...)."""
        rcop = getattr(op, "rc", None)
        if rcop is None:
            return
        self.thread(activation).join(
            rcop.vc_global() if level == "global" else rcop.vc_local())

    # -- cofence ------------------------------------------------------------ #

    def cofence_joined(self, activation, down_allowed: frozenset,
                       downward, upward) -> None:
        """The fence returned: join the local-data clock of every op its
        DOWNWARD filter constrained; record the class annotation."""
        th = self.thread(activation)
        keep = []
        for classes, rcop in th.fence_ops:
            if may_pass(classes, down_allowed):
                keep.append((classes, rcop))
            else:
                th.join(rcop.vc_local())
        th.fence_ops = keep
        self.fences.append((th.name, downward, upward, self.machine.sim.now))

    # -- events -------------------------------------------------------------- #

    def _event_key(self, ref) -> tuple:
        return (ref.event.name, ref.world_rank)

    def event_clock(self, ref) -> dict:
        return self._event_clocks.get(self._event_key(ref), {})

    def event_release(self, ref, vc: dict) -> None:
        vc_join(self._event_clocks.setdefault(self._event_key(ref), {}), vc)

    def event_acquire(self, activation, ref) -> None:
        self.thread(activation).join(self.event_clock(ref))

    def notify(self, activation, ref) -> None:
        """event_notify: the runtime already held the post back for the
        remote effects of earlier implicit ops, so the release clock
        carries their global ticks."""
        th = self.thread(activation)
        vc = th.release()
        vc_join(vc, th.issued)
        self.event_release(ref, vc)

    # -- finish -------------------------------------------------------------- #

    def finish_enter(self, activation, key: tuple) -> None:
        th = self.thread(activation)
        vc = th.release()
        vc_join(vc, th.issued)
        vc_join(self._finish_clocks.setdefault(key, {}), vc)

    def finish_exit(self, activation, key: tuple) -> None:
        th = self.thread(activation)
        th.join(self._finish_clocks.get(key, {}))
        # Everything this activation issued is globally complete and now
        # dominated by the thread clock.
        th.fence_ops = []
        th.issued = {}

    # -- locks ---------------------------------------------------------------- #

    def lock_released(self, activation, name: str, home: int) -> None:
        """Lock release is fire-and-forget: it orders the holder's direct
        accesses, not in-flight asynchronous effects (no ``issued``)."""
        th = self.thread(activation)
        vc_join(self._lock_clocks.setdefault((name, home), {}), th.release())

    def lock_acquired(self, activation, name: str, home: int) -> None:
        self.thread(activation).join(self._lock_clocks.get((name, home), {}))

    # -- blocking collectives -------------------------------------------------- #

    def coll_enter(self, activation, team, contribute: bool = True) -> tuple:
        """SPMD discipline matches each member's k-th blocking collective
        on a team with its teammates' k-th."""
        th = self.thread(activation)
        ckey = (th.rank, team.id)
        n = self._coll_rounds.get(ckey, 0)
        self._coll_rounds[ckey] = n + 1
        key = ("coll", team.id, n)
        if contribute:
            vc_join(self._coll_clocks.setdefault(key, {}), th.release())
        return key

    def coll_exit(self, activation, key: tuple, join: bool = True) -> None:
        if join:
            self.thread(activation).join(self._coll_clocks.get(key, {}))

    # -- reporting -------------------------------------------------------------- #

    @property
    def race_count(self) -> int:
        return len(self.races)

    def report(self) -> str:
        """Human-readable summary of every detected race."""
        if not self.races:
            return (f"racecheck: no races "
                    f"({self.machine.stats['race.accesses']} accesses, "
                    f"{self._threads} activations instrumented)")
        lines = [f"racecheck: {len(self.races)} race(s)"]
        lines.extend(f"  {r}" for r in self.races)
        return "\n".join(lines)
