"""Dynamic analyses over simulation runs (race detection, ...)."""

from repro.analysis.racecheck import AccessSite, RaceDetector, RaceReport

__all__ = ["AccessSite", "RaceDetector", "RaceReport"]
